package dataio

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"highorder/internal/data"
	"highorder/internal/synth"
)

// sameValue compares attribute values treating NaN as equal to itself, so
// fuzz inputs containing "NaN" do not trip the round-trip comparison.
func sameValue(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

func sameRecords(a, b data.Record) bool {
	if a.Class != b.Class || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if !sameValue(a.Values[i], b.Values[i]) {
			return false
		}
	}
	return true
}

// FuzzParseRecord fuzzes single CSV data rows against the Stagger schema
// (the paper's nominal stream) and a numeric schema (Hyperplane): parsing
// must never panic, and any row that parses must survive a
// write-read round trip bit-for-bit.
func FuzzParseRecord(f *testing.F) {
	nominal := synth.StaggerSchema()
	numeric := synth.NewHyperplane(synth.HyperplaneConfig{Seed: 1}).Schema()

	// Seed corpus: valid rows from the generators plus known-bad shapes
	// from the existing error tests.
	g := synth.NewStagger(synth.StaggerConfig{Seed: 1})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, synth.TakeDataset(g, 5)); err != nil {
		f.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, row := range lines[1:] {
		f.Add(row)
	}
	f.Add("purple,circle,small,negative")
	f.Add("red,circle")
	f.Add("red,circle,small,maybe,extra")
	f.Add(`"red",circle,small,negative`)
	f.Add("1.5,2.5,NaN,+Inf,1e309,false")
	f.Add("")

	f.Fuzz(func(t *testing.T, row string) {
		for _, schema := range []*data.Schema{nominal, numeric} {
			header := headerFor(schema)
			d, err := ReadCSV(strings.NewReader(header+"\n"+row+"\n"), schema)
			if err != nil {
				continue
			}
			// Whatever parsed must satisfy the schema and round-trip.
			for i, rec := range d.Records {
				if cerr := schema.CheckRecord(rec); cerr != nil {
					t.Fatalf("ReadCSV accepted record %d violating schema: %v", i, cerr)
				}
			}
			var out bytes.Buffer
			if err := WriteCSV(&out, d); err != nil {
				t.Fatalf("WriteCSV failed on records ReadCSV accepted: %v", err)
			}
			back, err := ReadCSV(bytes.NewReader(out.Bytes()), schema)
			if err != nil {
				t.Fatalf("round trip failed to parse: %v", err)
			}
			if back.Len() != d.Len() {
				t.Fatalf("round trip %d records, want %d", back.Len(), d.Len())
			}
			for i := range d.Records {
				if !sameRecords(d.Records[i], back.Records[i]) {
					t.Fatalf("record %d changed in round trip: %+v vs %+v", i, d.Records[i], back.Records[i])
				}
			}
		}
	})
}

// headerFor renders the CSV header row for a schema, mirroring WriteCSV.
func headerFor(s *data.Schema) string {
	names := make([]string, 0, s.NumAttributes()+1)
	for _, a := range s.Attributes {
		names = append(names, a.Name)
	}
	return strings.Join(append(names, "class"), ",")
}

// FuzzReadStream fuzzes whole stream payloads: the incremental
// StreamReader and the batch ReadCSV must agree on every input — same
// records when both succeed, and a failure on one side implies a failure
// on the other.
func FuzzReadStream(f *testing.F) {
	schema := synth.StaggerSchema()

	g := synth.NewStagger(synth.StaggerConfig{Seed: 2})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, synth.TakeDataset(g, 8)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("color,shape,size,class\n"))
	f.Add([]byte("color,shape,size,class\npurple,circle,small,negative\n"))
	f.Add([]byte("color,shape,size,class\nred,circle,small,negative\nred,circle\n"))
	f.Add([]byte("not,a,valid,header\nred,circle,small,negative\n"))
	f.Add([]byte{})
	f.Add([]byte("color,shape,size,class\r\nred,circle,small,negative\r\n"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		batch, batchErr := ReadCSV(bytes.NewReader(payload), schema)

		sr, err := NewStreamReader(bytes.NewReader(payload), schema)
		if err != nil {
			if batchErr == nil {
				t.Fatalf("StreamReader rejected header ReadCSV accepted: %v", err)
			}
			return
		}
		var streamed []data.Record
		var streamErr error
		for {
			rec, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				streamErr = err
				break
			}
			streamed = append(streamed, rec)
		}

		if batchErr == nil {
			if streamErr != nil {
				t.Fatalf("ReadCSV accepted the stream but StreamReader failed: %v", streamErr)
			}
			if len(streamed) != batch.Len() {
				t.Fatalf("StreamReader yielded %d records, ReadCSV %d", len(streamed), batch.Len())
			}
			for i := range streamed {
				if !sameRecords(streamed[i], batch.Records[i]) {
					t.Fatalf("record %d differs between StreamReader and ReadCSV", i)
				}
			}
			if sr.Line() != batch.Len() {
				t.Fatalf("Line() = %d after %d records", sr.Line(), batch.Len())
			}
		} else if streamErr == nil {
			t.Fatalf("ReadCSV rejected the stream (%v) but StreamReader read %d records cleanly", batchErr, len(streamed))
		}
	})
}
