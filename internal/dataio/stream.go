package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"highorder/internal/data"
)

// StreamReader reads a CSV stream written by WriteCSV one record at a
// time, so arbitrarily long streams can be processed in constant memory —
// the natural mode for the online tools.
type StreamReader struct {
	schema *data.Schema
	cr     *csv.Reader
	line   int
}

// NewStreamReader wraps r and validates the header against schema.
func NewStreamReader(r io.Reader, schema *data.Schema) (*StreamReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.NumAttributes() + 1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataio: reading header: %w", err)
	}
	for i, a := range schema.Attributes {
		if header[i] != a.Name {
			return nil, fmt.Errorf("dataio: header column %d is %q, schema expects %q", i, header[i], a.Name)
		}
	}
	return &StreamReader{schema: schema, cr: cr, line: 1}, nil
}

// Next returns the next record, or io.EOF when the stream ends.
func (s *StreamReader) Next() (data.Record, error) {
	row, err := s.cr.Read()
	if err == io.EOF {
		return data.Record{}, io.EOF
	}
	s.line++
	if err != nil {
		return data.Record{}, fmt.Errorf("dataio: line %d: %w", s.line, err)
	}
	rec := data.Record{Values: make([]float64, s.schema.NumAttributes())}
	for i, a := range s.schema.Attributes {
		if a.Kind == data.Nominal {
			v := a.ValueIndex(row[i])
			if v < 0 {
				return data.Record{}, fmt.Errorf("dataio: line %d: unknown value %q for attribute %q", s.line, row[i], a.Name)
			}
			rec.Values[i] = float64(v)
			continue
		}
		f, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			return data.Record{}, fmt.Errorf("dataio: line %d: attribute %q: %w", s.line, a.Name, err)
		}
		rec.Values[i] = f
	}
	cls := s.schema.ClassIndex(row[len(row)-1])
	if cls < 0 {
		return data.Record{}, fmt.Errorf("dataio: line %d: unknown class %q", s.line, row[len(row)-1])
	}
	rec.Class = cls
	return rec, nil
}

// Line returns the number of data lines consumed so far.
func (s *StreamReader) Line() int { return s.line - 1 }
