package data

import (
	"math"
	"testing"
	"testing/quick"

	"highorder/internal/rng"
)

func binarySchema() *Schema {
	return &Schema{
		Attributes: []Attribute{
			{Name: "color", Kind: Nominal, Values: []string{"green", "blue", "red"}},
			{Name: "x", Kind: Numeric},
		},
		Classes: []string{"neg", "pos"},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := binarySchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []*Schema{
		{Classes: []string{"a", "b"}},
		{Attributes: []Attribute{{Name: "x", Kind: Numeric}}, Classes: []string{"a"}},
		{Attributes: []Attribute{{Name: "", Kind: Numeric}}, Classes: []string{"a", "b"}},
		{Attributes: []Attribute{{Name: "x", Kind: Numeric}, {Name: "x", Kind: Numeric}}, Classes: []string{"a", "b"}},
		{Attributes: []Attribute{{Name: "c", Kind: Nominal, Values: []string{"only"}}}, Classes: []string{"a", "b"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestCheckRecord(t *testing.T) {
	s := binarySchema()
	ok := Record{Values: []float64{1, 0.5}, Class: 1}
	if err := s.CheckRecord(ok); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := []Record{
		{Values: []float64{1}, Class: 0},        // wrong arity
		{Values: []float64{3, 0.5}, Class: 0},   // nominal out of range
		{Values: []float64{1.5, 0.5}, Class: 0}, // non-integer nominal
		{Values: []float64{-1, 0.5}, Class: 0},  // negative nominal
		{Values: []float64{0, 0.5}, Class: 2},   // class out of range
		{Values: []float64{0, 0.5}, Class: -1},  // negative class
	}
	for i, r := range bad {
		if err := s.CheckRecord(r); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestAttributeHelpers(t *testing.T) {
	a := Attribute{Name: "color", Kind: Nominal, Values: []string{"g", "b", "r"}}
	if a.Cardinality() != 3 {
		t.Errorf("Cardinality = %d, want 3", a.Cardinality())
	}
	if idx := a.ValueIndex("b"); idx != 1 {
		t.Errorf("ValueIndex(b) = %d, want 1", idx)
	}
	if idx := a.ValueIndex("missing"); idx != -1 {
		t.Errorf("ValueIndex(missing) = %d, want -1", idx)
	}
	num := Attribute{Name: "x", Kind: Numeric}
	if num.Cardinality() != 0 {
		t.Errorf("numeric Cardinality = %d, want 0", num.Cardinality())
	}
}

func TestSchemaClassIndex(t *testing.T) {
	s := binarySchema()
	if s.ClassIndex("pos") != 1 || s.ClassIndex("neg") != 0 || s.ClassIndex("zzz") != -1 {
		t.Fatalf("ClassIndex lookups wrong: pos=%d neg=%d zzz=%d",
			s.ClassIndex("pos"), s.ClassIndex("neg"), s.ClassIndex("zzz"))
	}
}

func smallDataset(classes ...int) *Dataset {
	d := NewDataset(binarySchema())
	for i, c := range classes {
		d.Add(Record{Values: []float64{float64(i % 3), float64(i)}, Class: c})
	}
	return d
}

func TestClassCountsAndDistribution(t *testing.T) {
	d := smallDataset(0, 1, 1, 1)
	counts := d.ClassCounts()
	if counts[0] != 1 || counts[1] != 3 {
		t.Fatalf("ClassCounts = %v, want [1 3]", counts)
	}
	dist := d.ClassDistribution()
	if math.Abs(dist[0]-0.25) > 1e-12 || math.Abs(dist[1]-0.75) > 1e-12 {
		t.Fatalf("ClassDistribution = %v, want [0.25 0.75]", dist)
	}
}

func TestEmptyDistributionIsUniform(t *testing.T) {
	d := NewDataset(binarySchema())
	dist := d.ClassDistribution()
	if dist[0] != 0.5 || dist[1] != 0.5 {
		t.Fatalf("empty ClassDistribution = %v, want uniform", dist)
	}
}

func TestMajorityClass(t *testing.T) {
	if got := smallDataset(0, 1, 1).MajorityClass(); got != 1 {
		t.Errorf("MajorityClass = %d, want 1", got)
	}
	if got := smallDataset(0, 1).MajorityClass(); got != 0 {
		t.Errorf("tie MajorityClass = %d, want 0 (lower index)", got)
	}
	if got := NewDataset(binarySchema()).MajorityClass(); got != 0 {
		t.Errorf("empty MajorityClass = %d, want 0", got)
	}
}

func TestIsPure(t *testing.T) {
	if !smallDataset(1, 1, 1).IsPure() {
		t.Error("uniform dataset not reported pure")
	}
	if smallDataset(0, 1).IsPure() {
		t.Error("mixed dataset reported pure")
	}
	if !NewDataset(binarySchema()).IsPure() {
		t.Error("empty dataset not reported pure")
	}
}

func TestSliceAndConcat(t *testing.T) {
	d := smallDataset(0, 1, 0, 1, 0)
	a, b := d.Slice(0, 2), d.Slice(2, 5)
	if a.Len() != 2 || b.Len() != 3 {
		t.Fatalf("Slice lengths = %d,%d, want 2,3", a.Len(), b.Len())
	}
	c := a.Concat(b)
	if c.Len() != 5 {
		t.Fatalf("Concat length = %d, want 5", c.Len())
	}
	for i := range d.Records {
		if c.Records[i].Class != d.Records[i].Class {
			t.Fatalf("Concat reordered records at %d", i)
		}
	}
}

func TestSplitHoldout(t *testing.T) {
	d := smallDataset(0, 1, 0, 1, 0, 1, 0)
	train, test := d.SplitHoldout(rng.New(1))
	if test.Len() != 3 || train.Len() != 4 {
		t.Fatalf("holdout sizes train=%d test=%d, want 4,3 (odd extra to train)", train.Len(), test.Len())
	}
	// Every original record appears exactly once across the two halves.
	seen := make(map[float64]int)
	for _, r := range append(append([]Record{}, train.Records...), test.Records...) {
		seen[r.Values[1]]++
	}
	if len(seen) != 7 {
		t.Fatalf("holdout halves cover %d distinct records, want 7", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("record %v appears %d times across halves", v, n)
		}
	}
}

func TestSplitHoldoutDeterministic(t *testing.T) {
	d := smallDataset(0, 1, 0, 1, 0, 1)
	tr1, te1 := d.SplitHoldout(rng.New(9))
	tr2, te2 := d.SplitHoldout(rng.New(9))
	for i := range tr1.Records {
		if tr1.Records[i].Values[1] != tr2.Records[i].Values[1] {
			t.Fatal("holdout split not deterministic for equal seeds")
		}
	}
	for i := range te1.Records {
		if te1.Records[i].Values[1] != te2.Records[i].Values[1] {
			t.Fatal("holdout split not deterministic for equal seeds")
		}
	}
}

func TestBlocks(t *testing.T) {
	d := smallDataset(0, 1, 0, 1, 0, 1, 0)
	blocks := d.Blocks(3)
	if len(blocks) != 3 {
		t.Fatalf("Blocks count = %d, want 3", len(blocks))
	}
	sizes := []int{blocks[0].Len(), blocks[1].Len(), blocks[2].Len()}
	if sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("Block sizes = %v, want [3 3 1]", sizes)
	}
	// Blocks preserve stream order.
	if blocks[0].Records[0].Values[1] != 0 || blocks[2].Records[0].Values[1] != 6 {
		t.Fatal("Blocks reordered the stream")
	}
}

func TestBlocksPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Blocks(0) did not panic")
		}
	}()
	smallDataset(0, 1).Blocks(0)
}

func TestEntropy(t *testing.T) {
	if h := smallDataset(0, 0, 1, 1).Entropy(); math.Abs(h-1) > 1e-12 {
		t.Errorf("balanced entropy = %v, want 1", h)
	}
	if h := smallDataset(1, 1, 1).Entropy(); h != 0 {
		t.Errorf("pure entropy = %v, want 0", h)
	}
	if h := NewDataset(binarySchema()).Entropy(); h != 0 {
		t.Errorf("empty entropy = %v, want 0", h)
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{Values: []float64{1, 2}, Class: 1}
	c := r.Clone()
	c.Values[0] = 99
	if r.Values[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

// Property: for any class assignment, ClassCounts sums to Len and the
// distribution sums to 1.
func TestClassCountsProperty(t *testing.T) {
	f := func(labels []bool) bool {
		d := NewDataset(binarySchema())
		for i, l := range labels {
			c := 0
			if l {
				c = 1
			}
			d.Add(Record{Values: []float64{float64(i % 3), 0}, Class: c})
		}
		counts := d.ClassCounts()
		if counts[0]+counts[1] != d.Len() {
			return false
		}
		dist := d.ClassDistribution()
		return math.Abs(dist[0]+dist[1]-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Blocks(b) always reassembles to the original dataset.
func TestBlocksReassembleProperty(t *testing.T) {
	f := func(n uint8, b uint8) bool {
		size := int(b)%10 + 1
		d := NewDataset(binarySchema())
		for i := 0; i < int(n); i++ {
			d.Add(Record{Values: []float64{0, float64(i)}, Class: i % 2})
		}
		total := 0
		next := 0.0
		for _, blk := range d.Blocks(size) {
			total += blk.Len()
			for _, r := range blk.Records {
				if r.Values[1] != next {
					return false
				}
				next++
			}
		}
		return total == d.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKFoldPartition(t *testing.T) {
	d := smallDataset(0, 1, 0, 1, 0, 1, 0, 1, 0, 1)
	trains, tests := d.KFold(rng.New(4), 3)
	if len(trains) != 3 || len(tests) != 3 {
		t.Fatalf("folds = %d/%d, want 3/3", len(trains), len(tests))
	}
	totalTest := 0
	seen := map[float64]int{}
	for f := 0; f < 3; f++ {
		if trains[f].Len()+tests[f].Len() != d.Len() {
			t.Fatalf("fold %d covers %d records", f, trains[f].Len()+tests[f].Len())
		}
		totalTest += tests[f].Len()
		for _, r := range tests[f].Records {
			seen[r.Values[1]]++
		}
	}
	if totalTest != d.Len() {
		t.Fatalf("test shards cover %d records, want %d", totalTest, d.Len())
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("record %v appears in %d test shards", v, n)
		}
	}
}

func TestKFoldPanics(t *testing.T) {
	d := smallDataset(0, 1)
	for _, k := range []int{1, 3} {
		k := k
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KFold(%d) on 2 records did not panic", k)
				}
			}()
			d.KFold(rng.New(1), k)
		}()
	}
}

func TestKFoldDisjointTrainTest(t *testing.T) {
	d := smallDataset(0, 1, 0, 1, 0, 1, 0, 1, 0)
	trains, tests := d.KFold(rng.New(5), 3)
	for f := range trains {
		inTest := map[float64]bool{}
		for _, r := range tests[f].Records {
			inTest[r.Values[1]] = true
		}
		for _, r := range trains[f].Records {
			if inTest[r.Values[1]] {
				t.Fatalf("fold %d train and test overlap", f)
			}
		}
	}
}
