//go:build !race

package data

import "testing"

// TestViewIterationAllocs is the allocation gate verify.sh enforces on
// the zero-copy dataset view: walking a multi-segment view through
// Segments must not allocate at all. The file is excluded under -race
// because race instrumentation changes allocation behavior.
func TestViewIterationAllocs(t *testing.T) {
	s := viewSchema()
	v := ViewOf(seqDataset(s, 0, 200))
	for i := 0; i < 6; i++ {
		v = v.Concat(ViewOf(seqDataset(s, 1000*(i+1), 200)))
	}
	sum := 0
	allocs := testing.AllocsPerRun(100, func() {
		for _, seg := range v.Segments() {
			for _, r := range seg {
				sum += r.Class
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("view iteration allocates %.1f times per pass, want 0", allocs)
	}
	if sum == 0 {
		t.Fatal("iteration was optimized away; gate is vacuous")
	}
}

func BenchmarkViewConcat(b *testing.B) {
	s := viewSchema()
	parts := make([]*View, 64)
	for i := range parts {
		parts[i] = ViewOf(seqDataset(s, i*100, 100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := parts[0]
		for _, p := range parts[1:] {
			v = v.Concat(p)
		}
		if v.Len() != 6400 {
			b.Fatal("bad concat")
		}
	}
}
