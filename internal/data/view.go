package data

// View is a read-only, zero-copy concatenation of record segments that
// share backing storage with the Datasets they were built from. The
// concept-clustering engine builds a dendrogram by repeatedly merging
// clusters; representing each cluster's records as a View makes a merger
// an O(segments) splice of slice headers instead of an O(records) copy,
// so a dendrogram of depth d no longer copies every record d times.
//
// A View never mutates its segments, and callers must not mutate records
// reached through it: the same backing arrays are visible through the
// source Datasets and through every derived View.
type View struct {
	schema *Schema
	segs   [][]Record
	n      int
}

// ViewOf wraps d as a single-segment view. The records are shared, not
// copied.
func ViewOf(d *Dataset) *View {
	v := &View{schema: d.Schema, n: len(d.Records)}
	if len(d.Records) > 0 {
		v.segs = [][]Record{d.Records}
	}
	return v
}

// Len returns the number of records visible through the view.
func (v *View) Len() int { return v.n }

// Schema returns the shared schema.
func (v *View) Schema() *Schema { return v.schema }

// Segments exposes the underlying record segments for allocation-free
// iteration. The returned slices are shared with the view's sources and
// must be treated as read-only.
func (v *View) Segments() [][]Record { return v.segs }

// At returns record i in concatenation order. It walks the segment list,
// so it is O(segments); hot loops should range over Segments instead.
func (v *View) At(i int) Record {
	for _, seg := range v.segs {
		if i < len(seg) {
			return seg[i]
		}
		i -= len(seg)
	}
	panic("data: View.At index out of range")
}

// Concat returns a view over v's records followed by o's. Neither input
// is modified and no records are copied; adjacent segments that are
// contiguous in the same backing array are coalesced, so concatenating
// stream-order slices (as step-1 chunk merging does) keeps the segment
// count at one instead of growing per merge.
func (v *View) Concat(o *View) *View {
	segs := make([][]Record, 0, len(v.segs)+len(o.segs))
	segs = append(segs, v.segs...) //homlint:allow hotpathalloc -- appends into exact-capacity preallocation
	for _, seg := range o.segs {
		if n := len(segs); n > 0 && contiguous(segs[n-1], seg) {
			segs[n-1] = segs[n-1][:len(segs[n-1])+len(seg)]
			continue
		}
		segs = append(segs, seg) //homlint:allow hotpathalloc -- appends into exact-capacity preallocation
	}
	return &View{schema: v.schema, segs: segs, n: v.n + o.n}
}

// contiguous reports whether b starts exactly where a ends within the
// same backing array. The address comparison is meaningful only when
// a's allocation extends past its length, which the cap check ensures.
func contiguous(a, b []Record) bool {
	if len(a) == 0 || len(b) == 0 || cap(a) <= len(a) {
		return false
	}
	ext := a[:len(a)+1]
	return &ext[len(a)] == &b[0]
}

// AppendTo appends every record of the view to dst and returns the
// extended slice — the one place a View's records are copied.
func (v *View) AppendTo(dst []Record) []Record {
	for _, seg := range v.segs {
		dst = append(dst, seg...) //homlint:allow hotpathalloc -- callers preallocate dst to the view length
	}
	return dst
}

// Materialize flattens the view into a freshly allocated Dataset. Record
// structs are copied; their Values slices remain shared.
func (v *View) Materialize() *Dataset {
	return &Dataset{Schema: v.schema, Records: v.AppendTo(make([]Record, 0, v.n))}
}
