// Package data defines the dataset substrate shared by every learner and
// generator in the repository: attribute schemas mixing nominal and numeric
// attributes, labeled records, and time-ordered datasets with the slicing,
// splitting and class-statistics operations the concept-clustering algorithm
// needs.
//
// A Record stores all attribute values as float64: numeric attributes hold
// their value directly, nominal attributes hold the index of the value in
// the attribute's Values list. This keeps records compact and uniform while
// the Schema preserves the semantics.
package data

import (
	"fmt"
	"math"
	"strings"
)

// AttrKind distinguishes nominal (categorical) from numeric (continuous)
// attributes.
type AttrKind int

const (
	// Nominal attributes take one of a fixed set of unordered values.
	Nominal AttrKind = iota
	// Numeric attributes take real values.
	Numeric
)

// String returns "nominal" or "numeric".
func (k AttrKind) String() string {
	switch k {
	case Nominal:
		return "nominal"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("AttrKind(%d)", int(k))
	}
}

// Attribute describes a single input attribute.
type Attribute struct {
	// Name identifies the attribute in schemas and serialized streams.
	Name string
	// Kind is Nominal or Numeric.
	Kind AttrKind
	// Values lists the admissible values of a Nominal attribute, in index
	// order. It is nil for Numeric attributes.
	Values []string
}

// Cardinality returns the number of distinct values of a nominal attribute,
// and 0 for a numeric attribute.
func (a Attribute) Cardinality() int {
	if a.Kind == Numeric {
		return 0
	}
	return len(a.Values)
}

// ValueIndex returns the index of value in a nominal attribute's value list,
// or -1 if absent.
func (a Attribute) ValueIndex(value string) int {
	for i, v := range a.Values {
		if v == value {
			return i
		}
	}
	return -1
}

// Schema describes the shape of a stream: its input attributes and the
// class labels.
type Schema struct {
	// Attributes are the input attributes, in record order.
	Attributes []Attribute
	// Classes are the class labels; a record's Class is an index into this
	// slice.
	Classes []string
}

// NumAttributes returns the number of input attributes.
func (s *Schema) NumAttributes() int { return len(s.Attributes) }

// NumClasses returns the number of class labels.
func (s *Schema) NumClasses() int { return len(s.Classes) }

// ClassIndex returns the index of label among the classes, or -1 if absent.
func (s *Schema) ClassIndex(label string) int {
	for i, c := range s.Classes {
		if c == label {
			return i
		}
	}
	return -1
}

// Validate reports whether the schema is well formed: at least one attribute
// and two classes, nominal attributes with at least two values, and no
// duplicate attribute names.
func (s *Schema) Validate() error {
	if len(s.Attributes) == 0 {
		return fmt.Errorf("data: schema has no attributes")
	}
	if len(s.Classes) < 2 {
		return fmt.Errorf("data: schema has %d classes, need at least 2", len(s.Classes))
	}
	seen := make(map[string]bool, len(s.Attributes))
	for i, a := range s.Attributes {
		if a.Name == "" {
			return fmt.Errorf("data: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("data: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Kind == Nominal && len(a.Values) < 2 {
			return fmt.Errorf("data: nominal attribute %q has %d values, need at least 2", a.Name, len(a.Values))
		}
	}
	return nil
}

// CheckRecord reports whether r conforms to the schema: correct arity,
// nominal values in range, class index in range.
func (s *Schema) CheckRecord(r Record) error {
	if len(r.Values) != len(s.Attributes) {
		return fmt.Errorf("data: record has %d values, schema has %d attributes", len(r.Values), len(s.Attributes))
	}
	for i, a := range s.Attributes {
		if a.Kind == Nominal {
			v := int(r.Values[i])
			//homlint:allow floatcmp -- integrality check: a nominal code is valid only when the round-trip is bit-exact
			if float64(v) != r.Values[i] || v < 0 || v >= len(a.Values) {
				return fmt.Errorf("data: attribute %q: nominal value %v out of range [0,%d)", a.Name, r.Values[i], len(a.Values))
			}
		}
	}
	if r.Class < 0 || r.Class >= len(s.Classes) {
		return fmt.Errorf("data: class %d out of range [0,%d)", r.Class, len(s.Classes))
	}
	return nil
}

// String renders the schema compactly, e.g. "color{green,blue,red}, x1:num → {pos,neg}".
func (s *Schema) String() string {
	var b strings.Builder
	for i, a := range s.Attributes {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		if a.Kind == Nominal {
			b.WriteString("{" + strings.Join(a.Values, ",") + "}")
		} else {
			b.WriteString(":num")
		}
	}
	b.WriteString(" → {" + strings.Join(s.Classes, ",") + "}")
	return b.String()
}

// Record is a single labeled example.
type Record struct {
	// Values holds the attribute values; see the package comment for the
	// encoding of nominal attributes.
	Values []float64
	// Class is the index of the record's label in the schema's Classes.
	Class int
}

// Clone returns a deep copy of r.
func (r Record) Clone() Record {
	v := make([]float64, len(r.Values))
	copy(v, r.Values)
	return Record{Values: v, Class: r.Class}
}

// Dataset is a time-ordered collection of records sharing a schema. The
// record order is the stream order; concept clustering relies on it.
type Dataset struct {
	Schema  *Schema
	Records []Record
}

// NewDataset returns an empty dataset over schema.
func NewDataset(schema *Schema) *Dataset {
	return &Dataset{Schema: schema}
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// Add appends a record.
func (d *Dataset) Add(r Record) { d.Records = append(d.Records, r) }

// Slice returns a view dataset over records [lo, hi). The records are
// shared, not copied.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	return &Dataset{Schema: d.Schema, Records: d.Records[lo:hi]}
}

// Concat returns a new dataset whose record slice is the concatenation of
// d's and others' records, in order. The schema is d's.
func (d *Dataset) Concat(others ...*Dataset) *Dataset {
	n := len(d.Records)
	for _, o := range others {
		n += len(o.Records)
	}
	out := make([]Record, 0, n)
	out = append(out, d.Records...)
	for _, o := range others {
		out = append(out, o.Records...)
	}
	return &Dataset{Schema: d.Schema, Records: out}
}

// ClassCounts returns the number of records per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Schema.NumClasses())
	for _, r := range d.Records {
		counts[r.Class]++
	}
	return counts
}

// ClassDistribution returns the empirical class probabilities. For an empty
// dataset it returns a uniform distribution.
func (d *Dataset) ClassDistribution() []float64 {
	k := d.Schema.NumClasses()
	dist := make([]float64, k)
	if len(d.Records) == 0 {
		for i := range dist {
			dist[i] = 1 / float64(k)
		}
		return dist
	}
	for _, r := range d.Records {
		dist[r.Class]++
	}
	for i := range dist {
		dist[i] /= float64(len(d.Records))
	}
	return dist
}

// MajorityClass returns the most frequent class (ties broken by lower
// index). For an empty dataset it returns 0.
func (d *Dataset) MajorityClass() int {
	counts := d.ClassCounts()
	best, bestCount := 0, -1
	for c, n := range counts {
		if n > bestCount {
			best, bestCount = c, n
		}
	}
	return best
}

// IsPure reports whether every record has the same class. An empty dataset
// is pure.
func (d *Dataset) IsPure() bool {
	if len(d.Records) <= 1 {
		return true
	}
	first := d.Records[0].Class
	for _, r := range d.Records[1:] {
		if r.Class != first {
			return false
		}
	}
	return true
}

// Shuffler is the randomness a split needs; *rng.Source satisfies it.
type Shuffler interface {
	Perm(n int) []int
}

// SplitHoldout partitions d into two datasets: a random half for training
// and the remaining half for testing, per the paper's holdout validation
// (§II-B). When d has an odd length the extra record goes to the training
// half. Records are shared with d, not copied.
func (d *Dataset) SplitHoldout(s Shuffler) (train, test *Dataset) {
	n := len(d.Records)
	perm := s.Perm(n)
	nTest := n / 2
	testRecs := make([]Record, 0, nTest)
	trainRecs := make([]Record, 0, n-nTest)
	for i, p := range perm {
		if i < nTest {
			testRecs = append(testRecs, d.Records[p]) //homlint:allow hotpathalloc -- appends into exact-capacity preallocation
		} else {
			trainRecs = append(trainRecs, d.Records[p]) //homlint:allow hotpathalloc -- appends into exact-capacity preallocation
		}
	}
	return &Dataset{Schema: d.Schema, Records: trainRecs},
		&Dataset{Schema: d.Schema, Records: testRecs}
}

// KFold partitions d into k cross-validation folds: fold i's test set is
// the i-th shard of a random permutation, and its training set is the
// rest. Records are shared, not copied. The paper's footnote 1 notes
// k-fold validation is preferable to the holdout split where speed
// allows; this utility supports that variant. It panics if k < 2 or
// d has fewer than k records.
func (d *Dataset) KFold(s Shuffler, k int) (trains, tests []*Dataset) {
	if k < 2 {
		panic("data: KFold with k < 2")
	}
	n := len(d.Records)
	if n < k {
		panic("data: KFold with fewer records than folds")
	}
	perm := s.Perm(n)
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	trains = make([]*Dataset, k)
	tests = make([]*Dataset, k)
	for f := 0; f < k; f++ {
		testRecs := make([]Record, 0, bounds[f+1]-bounds[f])
		trainRecs := make([]Record, 0, n-(bounds[f+1]-bounds[f]))
		for i, p := range perm {
			if i >= bounds[f] && i < bounds[f+1] {
				testRecs = append(testRecs, d.Records[p])
			} else {
				trainRecs = append(trainRecs, d.Records[p])
			}
		}
		trains[f] = &Dataset{Schema: d.Schema, Records: trainRecs}
		tests[f] = &Dataset{Schema: d.Schema, Records: testRecs}
	}
	return trains, tests
}

// Blocks partitions d into consecutive blocks of the given size, in stream
// order. The final block may be smaller. It panics if size <= 0.
func (d *Dataset) Blocks(size int) []*Dataset {
	if size <= 0 {
		panic("data: Blocks with non-positive size")
	}
	n := len(d.Records)
	blocks := make([]*Dataset, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		blocks = append(blocks, d.Slice(lo, hi))
	}
	return blocks
}

// Entropy returns the Shannon entropy (in bits) of the class distribution.
func (d *Dataset) Entropy() float64 {
	return EntropyOfCounts(d.ClassCounts(), len(d.Records))
}

// EntropyOfCounts returns the entropy in bits of a count vector with the
// given total. A zero total yields 0.
func EntropyOfCounts(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}
