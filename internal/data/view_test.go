package data

import "testing"

func viewSchema() *Schema {
	return &Schema{
		Attributes: []Attribute{{Name: "x", Kind: Numeric}},
		Classes:    []string{"a", "b"},
	}
}

func seqDataset(schema *Schema, lo, n int) *Dataset {
	d := NewDataset(schema)
	for i := 0; i < n; i++ {
		d.Add(Record{Values: []float64{float64(lo + i)}, Class: (lo + i) % 2})
	}
	return d
}

// flatten collects the view's records via Segments, the hot-loop access
// path.
func flatten(v *View) []Record {
	var out []Record
	for _, seg := range v.Segments() {
		out = append(out, seg...)
	}
	return out
}

func TestViewOfSharesRecords(t *testing.T) {
	d := seqDataset(viewSchema(), 0, 5)
	v := ViewOf(d)
	if v.Len() != 5 {
		t.Fatalf("Len = %d, want 5", v.Len())
	}
	// Mutating the source dataset's record is visible through the view:
	// the storage is shared, not copied.
	d.Records[2].Class = 1 - d.Records[2].Class
	if v.At(2).Class != d.Records[2].Class {
		t.Fatal("view does not share the source dataset's records")
	}
}

func TestViewConcatOrderAndLen(t *testing.T) {
	s := viewSchema()
	u := ViewOf(seqDataset(s, 0, 3))
	v := ViewOf(seqDataset(s, 100, 4))
	w := u.Concat(v)
	if w.Len() != 7 {
		t.Fatalf("Len = %d, want 7", w.Len())
	}
	want := []float64{0, 1, 2, 100, 101, 102, 103}
	got := flatten(w)
	if len(got) != len(want) {
		t.Fatalf("flattened %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Values[0] != want[i] {
			t.Fatalf("record %d = %v, want %v", i, r.Values[0], want[i])
		}
	}
	// Concat must not mutate its inputs.
	if u.Len() != 3 || v.Len() != 4 {
		t.Fatal("Concat mutated an input view")
	}
	if len(flatten(u)) != 3 {
		t.Fatal("Concat grew an input view's segments")
	}
}

func TestViewConcatCoalescesAdjacentSlices(t *testing.T) {
	d := seqDataset(viewSchema(), 0, 30)
	blocks := d.Blocks(10)
	v := ViewOf(blocks[0]).Concat(ViewOf(blocks[1])).Concat(ViewOf(blocks[2]))
	if got := len(v.Segments()); got != 1 {
		t.Fatalf("adjacent stream slices produced %d segments, want 1 (coalesced)", got)
	}
	if v.Len() != 30 {
		t.Fatalf("Len = %d, want 30", v.Len())
	}
	for i := 0; i < 30; i++ {
		if v.At(i).Values[0] != float64(i) {
			t.Fatalf("record %d = %v after coalescing", i, v.At(i).Values[0])
		}
	}
	// Non-adjacent slices of the same array must NOT coalesce.
	g := ViewOf(blocks[0]).Concat(ViewOf(blocks[2]))
	if got := len(g.Segments()); got != 2 {
		t.Fatalf("gap concat produced %d segments, want 2", got)
	}
	if g.Len() != 20 || g.At(10).Values[0] != 20 {
		t.Fatal("gap concat lost records")
	}
}

func TestViewMaterializeMatchesAppendTo(t *testing.T) {
	s := viewSchema()
	v := ViewOf(seqDataset(s, 0, 4)).Concat(ViewOf(seqDataset(s, 50, 3)))
	m := v.Materialize()
	if m.Len() != v.Len() || m.Schema != s {
		t.Fatalf("materialized %d records, want %d", m.Len(), v.Len())
	}
	app := v.AppendTo(nil)
	for i := range app {
		if m.Records[i].Values[0] != app[i].Values[0] || m.Records[i].Class != app[i].Class {
			t.Fatalf("Materialize and AppendTo disagree at record %d", i)
		}
	}
	// The materialized record slice is fresh: appending to it must not
	// touch the view.
	m.Add(Record{Values: []float64{-1}, Class: 0})
	if v.Len() != 7 {
		t.Fatal("Materialize shares its record slice header with the view")
	}
}

func TestViewEmptyDatasets(t *testing.T) {
	s := viewSchema()
	e := ViewOf(NewDataset(s))
	if e.Len() != 0 || len(e.Segments()) != 0 {
		t.Fatal("empty view not empty")
	}
	v := e.Concat(ViewOf(seqDataset(s, 7, 2)))
	if v.Len() != 2 || v.At(0).Values[0] != 7 {
		t.Fatal("concat with empty view broken")
	}
	if got := v.Concat(e).Len(); got != 2 {
		t.Fatalf("concat of empty onto view = %d records, want 2", got)
	}
}
