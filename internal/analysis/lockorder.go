package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder derives the mutex-acquisition order across the module and
// flags call paths that can acquire locks in conflicting order — the
// deadlock guard behind serve's sessionTable/session locking and any
// future multi-replica routing layer.
//
// Locks are abstracted to classes named by owning type and field
// ("serve.sessionTable.mu"), so two instances of one struct share a class.
// The per-package phase records, for every function, which classes it
// acquires directly (and which classes were already held at that point)
// and every call site made while holding a lock. The join resolves call
// sites through the program call graph — including func-value flow edges,
// so callbacks like sessionTable.onRemove are followed — computes each
// function's transitive acquisition set, builds the class-level
// "held → acquired" graph, and reports every edge participating in a
// cycle, plus same-class re-acquisition (a self-deadlock for sync.Mutex
// unless the instances provably differ).
//
// The analysis flattens control flow (branches are treated as executed in
// sequence), which over-approximates held sets; use
// //homlint:allow lockorder for reviewed false positives.
type LockOrder struct{}

// Name implements Analyzer.
func (*LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (*LockOrder) Doc() string {
	return "derive module-wide lock-acquisition order and flag cyclic (deadlock-prone) orderings"
}

// lockAcq is one direct acquisition: the class taken and the classes
// already held at that point.
type lockAcq struct {
	class string
	pos   token.Pos
	held  []string
}

// lockCall is a call site executed while holding at least one lock.
type lockCall struct {
	pos  token.Pos
	held []string
}

// lockFact is one function's local locking behavior.
type lockFact struct {
	acquires []lockAcq
	calls    []lockCall
}

// AFact implements Fact.
func (*lockFact) AFact() {}

// Run records each function's direct acquisitions and under-lock call
// sites as facts; all ordering reasoning happens in Join.
func (a *LockOrder) Run(pass *Pass) {
	if !pass.Canonical {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if fact := scanLocks(pass, fd.Body); fact != nil {
				pass.Prog.Facts.Export(a.Name(), obj, fact)
			}
			// Nested literals get their own facts, keyed by the literal,
			// analyzed with an empty held set: a closure runs where it is
			// called, not where it is created.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					if fact := scanLocks(pass, lit.Body); fact != nil {
						pass.Prog.Facts.Export(a.Name(), lit, fact)
					}
				}
				return true
			})
		}
	}
}

// scanLocks walks one body, flattening control flow, and returns the
// lockFact, or nil when the function neither locks nor calls under a lock.
func scanLocks(pass *Pass, body *ast.BlockStmt) *lockFact {
	s := &lockScanner{pass: pass, fact: &lockFact{}}
	s.stmts(body.List)
	if len(s.fact.acquires) == 0 && len(s.fact.calls) == 0 {
		return nil
	}
	return s.fact
}

type lockScanner struct {
	pass *Pass
	held []string
	fact *lockFact
}

func (s *lockScanner) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *lockScanner) stmt(st ast.Stmt) {
	switch v := st.(type) {
	case *ast.BlockStmt:
		s.stmts(v.List)
	case *ast.IfStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.expr(v.Cond)
		s.stmt(v.Body)
		if v.Else != nil {
			s.stmt(v.Else)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		if v.Cond != nil {
			s.expr(v.Cond)
		}
		s.stmt(v.Body)
		if v.Post != nil {
			s.stmt(v.Post)
		}
	case *ast.RangeStmt:
		s.expr(v.X)
		s.stmt(v.Body)
	case *ast.SwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		if v.Tag != nil {
			s.expr(v.Tag)
		}
		s.stmt(v.Body)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.stmt(v.Assign)
		s.stmt(v.Body)
	case *ast.SelectStmt:
		s.stmt(v.Body)
	case *ast.CaseClause:
		s.stmts(v.Body)
	case *ast.CommClause:
		if v.Comm != nil {
			s.stmt(v.Comm)
		}
		s.stmts(v.Body)
	case *ast.LabeledStmt:
		s.stmt(v.Stmt)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end — exactly
		// what leaving the class in the held set models. Other deferred
		// calls run at exit, almost always with the same held set.
		if class, op, ok := mutexOp(s.pass, v.Call); ok {
			if strings.HasSuffix(op, "Unlock") {
				return // held until end: no removal
			}
			s.acquire(class, v.Call.Pos())
			return
		}
		s.call(v.Call.Pos())
		for _, arg := range v.Call.Args {
			s.expr(arg)
		}
	case *ast.GoStmt:
		// The goroutine does not inherit the spawner's held locks; its own
		// acquisitions are covered by the callee's fact. Only argument
		// evaluation happens here.
		for _, arg := range v.Call.Args {
			s.expr(arg)
		}
	case *ast.ExprStmt:
		s.expr(v.X)
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			s.expr(e)
		}
		for _, e := range v.Lhs {
			s.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			s.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e)
					}
				}
			}
		}
	case *ast.SendStmt:
		s.expr(v.Chan)
		s.expr(v.Value)
	case *ast.IncDecStmt:
		s.expr(v.X)
	}
}

// expr records lock operations and call sites inside one expression.
// Function literals are opaque here: they have their own facts.
func (s *lockScanner) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if class, op, ok := mutexOp(s.pass, v); ok {
				if strings.HasSuffix(op, "Unlock") {
					s.release(class)
				} else {
					s.acquire(class, v.Pos())
				}
				return true
			}
			s.call(v.Pos())
		}
		return true
	})
}

func (s *lockScanner) acquire(class string, pos token.Pos) {
	s.fact.acquires = append(s.fact.acquires, lockAcq{
		class: class,
		pos:   pos,
		held:  append([]string(nil), s.held...),
	})
	s.held = append(s.held, class)
}

func (s *lockScanner) release(class string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i] == class {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

func (s *lockScanner) call(pos token.Pos) {
	if len(s.held) == 0 {
		return
	}
	s.fact.calls = append(s.fact.calls, lockCall{pos: pos, held: append([]string(nil), s.held...)})
}

// mutexOp recognizes <recv>.Lock/RLock/TryLock/Unlock/RUnlock calls on
// sync mutexes and returns the receiver's lock class.
func mutexOp(pass *Pass, call *ast.CallExpr) (class, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return lockClass(pass, sel.X), sel.Sel.Name, true
}

// lockClass names the lock abstractly: "pkg.Type.field" for struct-field
// mutexes, "pkg.var" for package-level ones, falling back to the receiver
// expression text.
func lockClass(pass *Pass, recv ast.Expr) string {
	recv = ast.Unparen(recv)
	switch v := recv.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			if owner := namedOf(sel.Recv()); owner != nil {
				return ownerName(owner) + "." + v.Sel.Name
			}
		}
		if obj := pass.Info.Uses[v.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + v.Sel.Name
		}
	case *ast.Ident:
		if obj := pass.Info.Uses[v]; obj != nil {
			if named := namedOf(obj.Type()); named != nil && obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + v.Name
			}
		}
	}
	return pass.Name + "." + types.ExprString(recv)
}

// namedOf unwraps pointers to the underlying named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func ownerName(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// lockEdge is one observed "acquired to while holding from" relation with
// a representative position and description.
type lockEdge struct {
	from, to string
	pos      token.Pos
	detail   string
}

// Join builds the class-level ordering graph over the call graph and
// reports cyclic orderings and same-class re-acquisition.
func (a *LockOrder) Join(prog *Program, report func(Diagnostic)) {
	g := prog.Graph()

	factOf := func(n *FuncNode) *lockFact {
		var key any
		switch {
		case n.Obj != nil:
			key = n.Obj
		case n.Lit != nil:
			key = n.Lit
		default:
			return nil
		}
		for _, f := range prog.Facts.Import(a.Name(), key) {
			if lf, ok := f.(*lockFact); ok {
				return lf
			}
		}
		return nil
	}

	// Transitive acquisition sets, memoized over the call graph.
	transAcq := map[*FuncNode]map[string]bool{}
	var acqOf func(n *FuncNode, visiting map[*FuncNode]bool) map[string]bool
	acqOf = func(n *FuncNode, visiting map[*FuncNode]bool) map[string]bool {
		if got, ok := transAcq[n]; ok {
			return got
		}
		if visiting[n] {
			return nil
		}
		visiting[n] = true
		out := map[string]bool{}
		if lf := factOf(n); lf != nil {
			for _, acq := range lf.acquires {
				out[acq.class] = true
			}
		}
		for _, cs := range n.Calls {
			for c := range acqOf(cs.Callee, visiting) {
				out[c] = true
			}
		}
		delete(visiting, n)
		transAcq[n] = out
		return out
	}

	// Class-level edges. First detail per (from,to) pair wins; node order
	// is deterministic, so output is too.
	edges := map[[2]string]*lockEdge{}
	addEdge := func(from, to string, pos token.Pos, detail string) {
		key := [2]string{from, to}
		if _, ok := edges[key]; !ok {
			edges[key] = &lockEdge{from: from, to: to, pos: pos, detail: detail}
		}
	}
	for _, n := range g.Nodes {
		lf := factOf(n)
		if lf == nil {
			continue
		}
		for _, acq := range lf.acquires {
			for _, h := range acq.held {
				addEdge(h, acq.class, acq.pos,
					fmt.Sprintf("%s acquires %s while holding %s", n.Name, acq.class, h))
			}
		}
		if len(lf.calls) == 0 {
			continue
		}
		// Resolve each under-lock call site to its graph targets by position.
		targets := map[token.Pos][]*CallSite{}
		for i := range n.Calls {
			cs := &n.Calls[i]
			targets[cs.Pos] = append(targets[cs.Pos], cs)
		}
		for _, call := range lf.calls {
			for _, cs := range targets[call.pos] {
				for to := range acqOf(cs.Callee, map[*FuncNode]bool{}) {
					for _, h := range call.held {
						addEdge(h, to, call.pos,
							fmt.Sprintf("%s calls %s (%s edge) which acquires %s while holding %s",
								n.Name, cs.Callee.Name, cs.Kind, to, h))
					}
				}
			}
		}
	}

	// Same-class re-acquisition is a deadlock on its own for sync.Mutex.
	var keys [][2]string
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	adj := map[string][]string{}
	for _, k := range keys {
		if k[0] == k[1] {
			e := edges[k]
			report(Diagnostic{
				Pos: prog.Fset.Position(e.pos),
				Message: fmt.Sprintf("lock class %s may be re-acquired while already held (%s); sync mutexes are not reentrant",
					e.from, e.detail),
			})
			continue
		}
		adj[k[0]] = append(adj[k[0]], k[1])
	}

	// Report every edge inside a strongly connected component of size > 1:
	// those are the orderings that can invert.
	for _, scc := range sccs(adj) {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[string]bool{}
		for _, c := range scc {
			inSCC[c] = true
		}
		sort.Strings(scc)
		cycle := strings.Join(scc, " <-> ")
		for _, k := range keys {
			if k[0] == k[1] || !inSCC[k[0]] || !inSCC[k[1]] {
				continue
			}
			e := edges[k]
			report(Diagnostic{
				Pos: prog.Fset.Position(e.pos),
				Message: fmt.Sprintf("lock-order inversion: %s; conflicting orders exist between {%s}",
					e.detail, cycle),
			})
		}
	}
}

// sccs returns the strongly connected components of the class graph
// (iterative Tarjan), deterministically ordered.
func sccs(adj map[string][]string) [][]string {
	var nodes []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	var froms []string
	for f := range adj {
		froms = append(froms, f)
	}
	sort.Strings(froms)
	for _, f := range froms {
		add(f)
		for _, t := range adj[f] {
			add(t)
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return out
}
