package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// TraceCtx flags functions that build an outbound HTTP request to a fleet
// peer without propagating the distributed-trace context. A hop that
// forgets to inject the X-Hom-Trace header silently severs the causal
// chain: the downstream process starts a fresh head trace and homtrace can
// never join the two halves, which is exactly the kind of regression that
// only shows up when someone is debugging an incident.
//
// The check is syntactic, keyed on the two ways this codebase constructs
// peer requests: http.NewRequest / http.NewRequestWithContext in files
// importing net/http, and the proxy pattern of cloning an inbound
// *http.Request (req.Clone) and sending it with .Do in the same function.
// A constructing function passes if it references the TraceHeader
// constant (however qualified) or calls a helper whose name mentions
// Trace — delegation to a named injector is visible hand-off. Test files
// are exempt; callers with no trace context to forward suppress with
// //homlint:allow tracectx.
type TraceCtx struct{}

// Name implements Analyzer.
func (*TraceCtx) Name() string { return "tracectx" }

// Doc implements Analyzer.
func (*TraceCtx) Doc() string {
	return "flags outbound fleet requests built without trace-context propagation (TraceHeader)"
}

// Run implements Analyzer.
func (tc *TraceCtx) Run(pass *Pass) {
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		httpName := ImportName(f.AST, "net/http")
		if httpName == "" {
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			tc.checkFunc(pass, fn.Body, httpName)
		}
	}
}

// checkFunc judges one top-level function, nested literals included —
// a proxy often builds the request in a closure but injects the header
// through a helper visible in the same declaration.
func (tc *TraceCtx) checkFunc(pass *Pass, body *ast.BlockStmt, httpName string) {
	var built []token.Pos  // http.NewRequest* call sites
	var cloned []token.Pos // <req>.Clone(...) call sites
	sends := false         // a .Do(...) call exists in this function
	propagates := false    // TraceHeader referenced or Trace-helper called
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if v.Name == "TraceHeader" {
				propagates = true
			}
		case *ast.CallExpr:
			switch fun := v.Fun.(type) {
			case *ast.Ident:
				if strings.Contains(fun.Name, "Trace") {
					propagates = true
				}
			case *ast.SelectorExpr:
				switch fun.Sel.Name {
				case "NewRequest", "NewRequestWithContext":
					if id, ok := fun.X.(*ast.Ident); ok && id.Name == httpName {
						built = append(built, v.Pos())
					}
				case "Clone":
					cloned = append(cloned, v.Pos())
				case "Do":
					sends = true
				}
				if strings.Contains(fun.Sel.Name, "Trace") {
					propagates = true
				}
			}
		}
		return true
	})
	if propagates {
		return
	}
	// A built request is an outbound hop whether sent here or returned to
	// the caller; a clone is only a proxy hop when this function also
	// sends it.
	sites := built
	if sends {
		sites = append(sites, cloned...)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, pos := range sites {
		pass.Report(pos, "outbound request without trace propagation: set TraceHeader (obs.TraceHeader) or delegate to a Trace-named helper")
	}
}
