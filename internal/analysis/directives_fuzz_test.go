package analysis

import (
	"strings"
	"testing"
)

// FuzzParseDirective hammers the //homlint: directive grammar. The parser
// feeds CI gating (a malformed directive is a finding; a silently
// mis-parsed one would un-suppress or over-suppress), so the invariants
// are strict:
//
//   - anything starting with the directive prefix must be recognized
//     (ok=true), anything else must not be
//   - a well-formed result is internally consistent: known kind, analyzer
//     and reason present exactly when the kind requires them
//   - the parser never panics
func FuzzParseDirective(f *testing.F) {
	f.Add("//homlint:allow determinism -- wall clock is sanctioned here")
	f.Add("//homlint:func-allow all -- generated code")
	f.Add("//homlint:file-allow lockorder -- fixture")
	f.Add("//homlint:hotpath")
	f.Add("//homlint:hotpath -- serve classify loop")
	f.Add("//homlint:allow")
	f.Add("//homlint:allow determinism")
	f.Add("//homlint:bogus x -- y")
	f.Add("// not a directive")
	f.Add("//homlint:")
	f.Add("//homlint:allow a b c -- d")
	f.Add("//homlint:allow\tall --\t tabs ")
	f.Fuzz(func(t *testing.T, text string) {
		kind, analyzer, reason, ok, malformed := parseDirective(text)
		if strings.HasPrefix(text, directivePrefix) != ok {
			t.Fatalf("prefix %v but ok=%v for %q", strings.HasPrefix(text, directivePrefix), ok, text)
		}
		if !ok {
			if kind != "" || analyzer != "" || reason != "" || malformed {
				t.Fatalf("non-directive %q returned data: kind=%q analyzer=%q reason=%q malformed=%v",
					text, kind, analyzer, reason, malformed)
			}
			return
		}
		if malformed {
			if kind != "" || analyzer != "" {
				t.Fatalf("malformed directive %q still returned kind=%q analyzer=%q", text, kind, analyzer)
			}
			return
		}
		switch kind {
		case "allow", "func-allow", "file-allow":
			if analyzer == "" || reason == "" {
				t.Fatalf("well-formed %s directive %q missing analyzer (%q) or reason (%q)", kind, text, analyzer, reason)
			}
			if strings.ContainsAny(analyzer, " \t") {
				t.Fatalf("analyzer %q contains whitespace (from %q)", analyzer, text)
			}
		case "hotpath":
			if analyzer != "" {
				t.Fatalf("hotpath directive %q returned analyzer %q", text, analyzer)
			}
		default:
			t.Fatalf("unknown well-formed kind %q from %q", kind, text)
		}
	})
}
