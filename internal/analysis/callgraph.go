package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how a call edge was resolved. Analyzers choose which
// kinds to traverse: static and flow edges are high-confidence; interface
// edges (class-hierarchy analysis) are conservative over-approximations
// that matter for soundness (lock order) more than precision.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a declared function or a concrete
	// method resolved by the type checker.
	EdgeStatic EdgeKind = iota
	// EdgeFlow is a call through a func-typed variable, struct field, or
	// parameter, resolved by tracing the func values assigned to it
	// anywhere in the module (e.g. a callback field invoked later).
	EdgeFlow
	// EdgeInterface is a call through an interface method, expanded to
	// every module type implementing the interface (CHA).
	EdgeInterface
	// EdgeClosure links a function to the func literals it creates — a
	// conservative stand-in for "the closure may run where it was built"
	// when the literal escapes through code the graph cannot follow.
	EdgeClosure
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeFlow:
		return "flow"
	case EdgeInterface:
		return "interface"
	case EdgeClosure:
		return "closure"
	}
	return "?"
}

// FuncNode is one function of the call graph: a declared function or
// method, a function literal, or a package's synthetic init node (package-
// level variable initializers).
type FuncNode struct {
	// Obj is the declared function's object; nil for literals and init.
	Obj *types.Func
	// Decl is the declaration; nil for literals and init.
	Decl *ast.FuncDecl
	// Lit is the literal; nil otherwise.
	Lit *ast.FuncLit
	// Pass is the canonical pass the function was loaded from.
	Pass *Pass
	// Name is the stable display name: "internal/serve.(*Server).runTasks",
	// "internal/serve.New$1" for literals, "internal/serve.init" for
	// package-level initializers.
	Name string
	// Calls are the outgoing call sites in source order.
	Calls []CallSite
}

// Body returns the function's body block, or nil for init nodes.
func (n *FuncNode) Body() *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// Pos returns the function's declaration position.
func (n *FuncNode) Pos() token.Pos {
	switch {
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Lit != nil:
		return n.Lit.Pos()
	}
	return token.NoPos
}

// CallSite is one resolved outgoing call.
type CallSite struct {
	// Pos is the call position.
	Pos token.Pos
	// Callee is the resolved target.
	Callee *FuncNode
	// Kind records how the edge was resolved.
	Kind EdgeKind
}

// CallGraph is the static call graph over a program's canonical passes.
// It is an approximation with documented edges: direct calls and concrete
// method calls (static), calls through func values traced by assignment
// flow (flow), interface dispatch expanded by CHA (interface), and
// closure-creation links (closure). Calls into the standard library and
// other non-module code have no edges — those callees have no bodies here.
type CallGraph struct {
	// Nodes is every function in deterministic program order.
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
}

// NodeOf returns the node for a declared function object, or nil.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode { return g.byObj[obj] }

// NodeOfLit returns the node for a function literal, or nil.
func (g *CallGraph) NodeOfLit(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// Reachable returns the set of nodes reachable from roots over edges whose
// kind passes the filter (nil traverses every kind), roots included.
func (g *CallGraph) Reachable(roots []*FuncNode, follow func(EdgeKind) bool) map[*FuncNode]bool {
	seen := map[*FuncNode]bool{}
	var stack []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.Calls {
			if follow != nil && !follow(c.Kind) {
				continue
			}
			if !seen[c.Callee] {
				seen[c.Callee] = true
				stack = append(stack, c.Callee)
			}
		}
	}
	return seen
}

// flowTarget is one value a func-typed object may hold: a concrete
// function node, or another object the value was copied from.
type flowTarget struct {
	node *FuncNode
	obj  types.Object
}

// pendingCall is a call site whose target needs whole-program resolution.
type pendingCall struct {
	caller *FuncNode
	pos    token.Pos
	// obj is the func-typed variable/field/parameter called (flow edges).
	obj types.Object
	// iface + method describe an interface dispatch site (CHA edges).
	iface  *types.Interface
	method string
}

// graphBuilder accumulates state across the canonical passes.
type graphBuilder struct {
	prog    *Program
	g       *CallGraph
	flows   map[types.Object][]flowTarget
	pending []pendingCall
	litSeq  map[*FuncNode]int
	// named is every module-declared named type, for CHA.
	named []*types.Named
	// resolved memoizes flow resolution.
	resolved map[types.Object][]*FuncNode
}

// buildCallGraph assembles the program call graph from the canonical
// passes in dependency order.
func buildCallGraph(prog *Program) *CallGraph {
	b := &graphBuilder{
		prog:     prog,
		g:        &CallGraph{byObj: map[*types.Func]*FuncNode{}, byLit: map[*ast.FuncLit]*FuncNode{}},
		flows:    map[types.Object][]flowTarget{},
		litSeq:   map[*FuncNode]int{},
		resolved: map[types.Object][]*FuncNode{},
	}
	// Phase 1: nodes for every declared function, and the module's named
	// types for CHA.
	declNodes := map[*ast.FuncDecl]*FuncNode{}
	for _, pass := range prog.Canon {
		for _, f := range pass.Files {
			for _, decl := range f.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					obj, _ := pass.Info.Defs[d.Name].(*types.Func)
					n := &FuncNode{Obj: obj, Decl: d, Pass: pass, Name: funcName(prog, pass, d)}
					b.g.Nodes = append(b.g.Nodes, n)
					declNodes[d] = n
					if obj != nil {
						b.g.byObj[obj] = n
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
							if named, ok := tn.Type().(*types.Named); ok {
								b.named = append(b.named, named)
							}
						}
					}
				}
			}
		}
	}
	// Phase 2: walk bodies — collect literals, static edges, pending
	// dynamic/interface calls, and func-value flows.
	for _, pass := range prog.Canon {
		var initNode *FuncNode
		getInit := func() *FuncNode {
			if initNode == nil {
				initNode = &FuncNode{Pass: pass, Name: pkgDisplayName(prog, pass) + ".init"}
				b.g.Nodes = append(b.g.Nodes, initNode)
			}
			return initNode
		}
		for _, f := range pass.Files {
			for _, decl := range f.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					b.walk(pass, declNodes[d], d.Body)
				case *ast.GenDecl:
					// Package-level var initializers can hold literals and
					// func-value flows (var handler = func(){...}).
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok || len(vs.Values) == 0 {
							continue
						}
						init := getInit()
						b.collectValueSpec(pass, init, vs)
						for _, v := range vs.Values {
							b.walk(pass, init, v)
						}
					}
				}
			}
		}
	}
	// Phase 3: resolve pending calls.
	for _, pc := range b.pending {
		var targets []*FuncNode
		kind := EdgeFlow
		if pc.obj != nil {
			targets = b.resolve(pc.obj, map[types.Object]bool{})
		} else if pc.iface != nil {
			kind = EdgeInterface
			targets = b.chaTargets(pc.iface, pc.method)
		}
		for _, t := range targets {
			pc.caller.Calls = append(pc.caller.Calls, CallSite{Pos: pc.pos, Callee: t, Kind: kind})
		}
	}
	for _, n := range b.g.Nodes {
		calls := n.Calls
		sort.SliceStable(calls, func(i, j int) bool {
			if calls[i].Pos != calls[j].Pos {
				return calls[i].Pos < calls[j].Pos
			}
			if calls[i].Kind != calls[j].Kind {
				return calls[i].Kind < calls[j].Kind
			}
			return calls[i].Callee.Name < calls[j].Callee.Name
		})
	}
	return b.g
}

// ensureLit returns the node for a function literal, creating it (named
// after its owner) on first sight. The body is walked by the tree walker
// when it reaches the literal, exactly once.
func (b *graphBuilder) ensureLit(pass *Pass, owner *FuncNode, lit *ast.FuncLit) *FuncNode {
	if n := b.g.byLit[lit]; n != nil {
		return n
	}
	b.litSeq[owner]++
	ln := &FuncNode{Lit: lit, Pass: pass, Name: fmt.Sprintf("%s$%d", owner.Name, b.litSeq[owner])}
	b.g.Nodes = append(b.g.Nodes, ln)
	b.g.byLit[lit] = ln
	return ln
}

// walk traverses one function body (or package-level initializer
// expression), attributing calls and flows to node n; nested function
// literals become their own nodes (with an EdgeClosure link from the
// creator) and are walked recursively.
func (b *graphBuilder) walk(pass *Pass, n *FuncNode, root ast.Node) {
	if n == nil || root == nil {
		return
	}
	ast.Inspect(root, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			ln := b.ensureLit(pass, n, v)
			n.Calls = append(n.Calls, CallSite{Pos: v.Pos(), Callee: ln, Kind: EdgeClosure})
			b.walk(pass, ln, v.Body)
			return false
		case *ast.CallExpr:
			b.collectCall(pass, n, v)
			return true
		case *ast.AssignStmt:
			b.collectAssign(pass, n, v)
			return true
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						b.collectValueSpec(pass, n, vs)
					}
				}
			}
			return true
		case *ast.CompositeLit:
			b.collectCompositeFlows(pass, n, v)
			return true
		}
		return true
	})
}

// collectCall records the call's edge (or defers it), plus any func values
// flowing into the callee's parameters.
func (b *graphBuilder) collectCall(pass *Pass, n *FuncNode, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.FuncLit:
		// Immediately invoked literal: a direct edge on top of the
		// EdgeClosure link the walker adds when it reaches the literal.
		ln := b.ensureLit(pass, n, fn)
		n.Calls = append(n.Calls, CallSite{Pos: call.Pos(), Callee: ln, Kind: EdgeStatic})
	case *ast.Ident:
		switch o := pass.Info.Uses[fn].(type) {
		case *types.Func:
			if callee := b.g.byObj[o]; callee != nil {
				n.Calls = append(n.Calls, CallSite{Pos: call.Pos(), Callee: callee, Kind: EdgeStatic})
			}
		case *types.Var:
			b.pending = append(b.pending, pendingCall{caller: n, pos: call.Pos(), obj: o})
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fn]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				recv := sel.Recv()
				if types.IsInterface(recv) {
					if iface, ok := recv.Underlying().(*types.Interface); ok {
						b.pending = append(b.pending, pendingCall{caller: n, pos: call.Pos(), iface: iface, method: fn.Sel.Name})
					}
				} else if m, ok := sel.Obj().(*types.Func); ok {
					if callee := b.g.byObj[m]; callee != nil {
						n.Calls = append(n.Calls, CallSite{Pos: call.Pos(), Callee: callee, Kind: EdgeStatic})
					}
				}
			case types.FieldVal:
				if fv, ok := sel.Obj().(*types.Var); ok {
					b.pending = append(b.pending, pendingCall{caller: n, pos: call.Pos(), obj: fv})
				}
			}
		} else if o, ok := pass.Info.Uses[fn.Sel].(*types.Func); ok {
			// Package-qualified call pkg.F(...).
			if callee := b.g.byObj[o]; callee != nil {
				n.Calls = append(n.Calls, CallSite{Pos: call.Pos(), Callee: callee, Kind: EdgeStatic})
			}
		}
	}
	// Func values passed as arguments flow into the callee's parameters
	// when the callee is a module function with a known signature.
	b.collectArgFlows(pass, n, call)
}

// collectArgFlows maps func-valued arguments onto the parameters of a
// statically known module callee, so calls through those parameters
// resolve (e.g. a collect callback stored by a registry constructor).
func (b *graphBuilder) collectArgFlows(pass *Pass, n *FuncNode, call *ast.CallExpr) {
	var callee *types.Func
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = pass.Info.Uses[fn].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			callee, _ = sel.Obj().(*types.Func)
		} else {
			callee, _ = pass.Info.Uses[fn.Sel].(*types.Func)
		}
	}
	if callee == nil || b.g.byObj[callee] == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break // variadic tail: one param object for many args — skip
		}
		if tgt := b.flowValue(pass, n, arg); tgt != nil {
			b.addFlow(params.At(i), *tgt)
		}
	}
}

func (b *graphBuilder) collectAssign(pass *Pass, n *FuncNode, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		tgt := b.flowValue(pass, n, as.Rhs[i])
		if tgt == nil {
			continue
		}
		if obj := lhsObject(pass, as.Lhs[i]); obj != nil {
			b.addFlow(obj, *tgt)
		}
	}
}

func (b *graphBuilder) collectValueSpec(pass *Pass, n *FuncNode, vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		tgt := b.flowValue(pass, n, vs.Values[i])
		if tgt == nil {
			continue
		}
		if obj := pass.Info.Defs[name]; obj != nil {
			b.addFlow(obj, *tgt)
		}
	}
}

// collectCompositeFlows records func values assigned to struct fields in
// composite literals (keyed and positional).
func (b *graphBuilder) collectCompositeFlows(pass *Pass, n *FuncNode, cl *ast.CompositeLit) {
	t := pass.TypeOf(cl)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range cl.Elts {
		var field types.Object
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field = pass.Info.Uses[key]
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
			value = elt
		}
		if field == nil || value == nil {
			continue
		}
		if tgt := b.flowValue(pass, n, value); tgt != nil {
			b.addFlow(field, *tgt)
		}
	}
}

// flowValue resolves an expression to a func-value flow target, or nil
// when the expression cannot yield a function the graph knows about.
func (b *graphBuilder) flowValue(pass *Pass, n *FuncNode, e ast.Expr) *flowTarget {
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return &flowTarget{node: b.ensureLit(pass, n, v)}
	case *ast.Ident:
		switch o := pass.Info.Uses[v].(type) {
		case *types.Func:
			if fn := b.g.byObj[o]; fn != nil {
				return &flowTarget{node: fn}
			}
		case *types.Var:
			if _, ok := o.Type().Underlying().(*types.Signature); ok {
				return &flowTarget{obj: o}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[v]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				if m, ok := sel.Obj().(*types.Func); ok {
					if fn := b.g.byObj[m]; fn != nil {
						return &flowTarget{node: fn}
					}
				}
			case types.FieldVal:
				if fv, ok := sel.Obj().(*types.Var); ok {
					if _, ok := fv.Type().Underlying().(*types.Signature); ok {
						return &flowTarget{obj: fv}
					}
				}
			}
		} else if o, ok := pass.Info.Uses[v.Sel].(*types.Func); ok {
			if fn := b.g.byObj[o]; fn != nil {
				return &flowTarget{node: fn}
			}
		}
	}
	return nil
}

func lhsObject(pass *Pass, lhs ast.Expr) types.Object {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := pass.Info.Defs[v]; obj != nil {
			return obj
		}
		return pass.Info.Uses[v]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pass.Info.Uses[v.Sel]
	}
	return nil
}

func (b *graphBuilder) addFlow(obj types.Object, tgt flowTarget) {
	if obj == nil || (tgt.node == nil && tgt.obj == nil) {
		return
	}
	b.flows[obj] = append(b.flows[obj], tgt)
}

// resolve returns every concrete function a func-typed object may hold,
// following copies through other objects with cycle protection.
func (b *graphBuilder) resolve(obj types.Object, visiting map[types.Object]bool) []*FuncNode {
	if cached, ok := b.resolved[obj]; ok {
		return cached
	}
	if visiting[obj] {
		return nil
	}
	visiting[obj] = true
	seen := map[*FuncNode]bool{}
	var out []*FuncNode
	for _, tgt := range b.flows[obj] {
		switch {
		case tgt.node != nil:
			if !seen[tgt.node] {
				seen[tgt.node] = true
				out = append(out, tgt.node)
			}
		case tgt.obj != nil:
			for _, fn := range b.resolve(tgt.obj, visiting) {
				if !seen[fn] {
					seen[fn] = true
					out = append(out, fn)
				}
			}
		}
	}
	delete(visiting, obj)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	b.resolved[obj] = out
	return out
}

// chaTargets returns the module methods implementing the interface method,
// in deterministic order.
func (b *graphBuilder) chaTargets(iface *types.Interface, method string) []*FuncNode {
	var out []*FuncNode
	seen := map[*FuncNode]bool{}
	for _, named := range b.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := b.g.byObj[m]; n != nil && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// pkgDisplayName renders the short package prefix for node names.
func pkgDisplayName(prog *Program, pass *Pass) string {
	pkg := pass.Path
	if prog.ModulePath != "" {
		pkg = strings.TrimPrefix(strings.TrimPrefix(pkg, prog.ModulePath), "/")
	}
	if pkg == "" {
		pkg = pass.Name
	}
	return pkg
}

// funcName renders the stable display name of a declared function.
func funcName(prog *Program, pass *Pass, d *ast.FuncDecl) string {
	pkg := pkgDisplayName(prog, pass)
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkg + "." + d.Name.Name
	}
	recv := types.ExprString(d.Recv.List[0].Type)
	return fmt.Sprintf("%s.(%s).%s", pkg, recv, d.Name.Name)
}
