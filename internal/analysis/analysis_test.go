package analysis

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// want is one expected diagnostic, parsed from a fixture comment of the
// form `// want <analyzer> "substring"`.
type want struct {
	file     string
	line     int
	analyzer string
	substr   string
}

func loadFixture(t *testing.T, name string) *Pass {
	t.Helper()
	prog, err := NewLoader().LoadDir(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Passes) == 0 {
		t.Fatalf("fixture %s: no passes", name)
	}
	// A fixture with in-package test files yields a canonical pass plus a
	// test-augmented one; the augmented pass holds every file, which is
	// what the single-pass harness wants.
	best := prog.Passes[0]
	for _, p := range prog.Passes[1:] {
		if len(p.Files) > len(best.Files) {
			best = p
		}
	}
	return best
}

func parseWants(t *testing.T, pass *Pass) []want {
	t.Helper()
	var out []want
	for _, f := range pass.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				parts := strings.SplitN(rest, " ", 2)
				w := want{file: pos.Filename, line: pos.Line, analyzer: parts[0]}
				if len(parts) == 2 {
					s, err := strconv.Unquote(strings.TrimSpace(parts[1]))
					if err != nil {
						t.Fatalf("%s:%d: unquoting want pattern %q: %v", pos.Filename, pos.Line, parts[1], err)
					}
					w.substr = s
				}
				out = append(out, w)
			}
		}
	}
	return out
}

// matchWants requires an exact correspondence between diagnostics and
// want annotations — no misses, no extras.
func matchWants(t *testing.T, diags []Diagnostic, wants []want) {
	t.Helper()
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line || d.Analyzer != w.analyzer {
				continue
			}
			if w.substr != "" && !strings.Contains(d.Message, w.substr) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing diagnostic: %s:%d [%s] containing %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestAnalyzersOnFixtures runs each analyzer over its violation fixture
// and requires an exact match between reported diagnostics and the
// fixture's want annotations — no misses, no extras.
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		fixture   string
		analyzers []string
	}{
		{"determinism", []string{"determinism"}},
		{"seedplumb", []string{"seedplumb"}},
		{"floatcmp", []string{"floatcmp"}},
		{"syncmisuse", []string{"syncmisuse"}},
		{"spanend", []string{"spanend"}},
		{"tracectx", []string{"tracectx"}},
		{"sleeploop", []string{"sleeploop"}},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			pass := loadFixture(t, tc.fixture)
			analyzers, err := ByName(tc.analyzers)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run(pass, analyzers)
			wants := parseWants(t, pass)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want annotations", tc.fixture)
			}
			matchWants(t, diags, wants)
		})
	}
}

// TestSuppression runs the full suite over the suppress fixture, all of
// whose violations carry line-, function-, or file-scope directives.
func TestSuppression(t *testing.T) {
	pass := loadFixture(t, "suppress")
	if diags := Run(pass, All()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("suppressed violation still reported: %s", d)
		}
	}
	if bad := CheckDirectives(pass); len(bad) != 0 {
		for _, d := range bad {
			t.Errorf("well-formed directive reported as malformed: %s", d)
		}
	}
}

// TestMalformedDirectives checks that directives that fail to parse are
// surfaced rather than silently ignored.
func TestMalformedDirectives(t *testing.T) {
	pass := loadFixture(t, "directives")
	bad := CheckDirectives(pass)
	if len(bad) != 3 {
		t.Fatalf("want 3 malformed directives, got %d: %v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Analyzer != "directives" {
			t.Errorf("malformed directive reported under analyzer %q, want \"directives\"", d.Analyzer)
		}
	}
}

func TestByName(t *testing.T) {
	got, err := ByName([]string{"floatcmp", "determinism"})
	if err != nil {
		t.Fatal(err)
	}
	// Suite order is preserved regardless of request order.
	if len(got) != 2 || got[0].Name() != "determinism" || got[1].Name() != "floatcmp" {
		names := make([]string, len(got))
		for i, a := range got {
			names[i] = a.Name()
		}
		t.Fatalf("ByName returned %v, want [determinism floatcmp]", names)
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
}

func TestDiagnosticString(t *testing.T) {
	pass := loadFixture(t, "floatcmp")
	analyzers, _ := ByName([]string{"floatcmp"})
	diags := Run(pass, analyzers)
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "[floatcmp]") || !strings.Contains(s, ":") {
		t.Errorf("unexpected diagnostic format: %q", s)
	}
}
