package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, minimal but valid: one run, one rule per analyzer,
// one result per diagnostic, file URIs relative to the analysis root. The
// schema subset here is what code-scanning UIs (GitHub, VS Code SARIF
// viewer) need to render findings inline.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log. Rules cover
// the full analyzer suite plus the directive checker, so a clean run
// still documents what was checked.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	var rules []sarifRule
	for _, a := range All() {
		rules = append(rules, sarifRule{ID: a.Name(), ShortDescription: sarifMessage{Text: a.Doc()}})
	}
	rules = append(rules, sarifRule{ID: "directives", ShortDescription: sarifMessage{Text: "malformed //homlint: suppression directives"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: RelPath(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "homlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
