package analysis

import (
	"go/ast"
	"go/types"
)

// SyncMisuse flags the two concurrency mistakes most likely to corrupt the
// parallel clustering engine silently:
//
//  1. Copied synchronization primitives: a sync.Mutex / sync.RWMutex /
//     sync.WaitGroup / sync.Once passed, returned, assigned, or received
//     by value. A copied lock guards nothing; a copied WaitGroup deadlocks
//     or races. (go vet's copylocks catches many of these, but not value
//     declarations copied from another variable in all positions; this
//     analyzer is the project-local belt to vet's braces.)
//  2. Goroutines launched inside a loop whose closure captures the loop
//     variable without shadowing it or passing it as an argument. Under
//     the module's go >= 1.22 semantics each iteration gets a fresh
//     variable, so this is a hygiene rule: the pattern is still a trap
//     when code is copied into older modules, and an explicit argument
//     documents what the goroutine reads.
type SyncMisuse struct{}

// Name implements Analyzer.
func (*SyncMisuse) Name() string { return "syncmisuse" }

// Doc implements Analyzer.
func (*SyncMisuse) Doc() string {
	return "flags by-value sync primitives and loop-variable capture in goroutines"
}

// syncValueTypes are the sync types that must never be copied.
var syncValueTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
}

// Run implements Analyzer.
func (sm *SyncMisuse) Run(pass *Pass) {
	for _, f := range pass.Files {
		syncName := ImportName(f.AST, "sync")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				sm.checkSignature(pass, syncName, v)
			case *ast.AssignStmt:
				sm.checkAssign(pass, syncName, v)
			case *ast.RangeStmt:
				sm.checkRangeCopy(pass, v)
				sm.checkLoopCapture(pass, v.Body, rangeLoopVars(v))
			case *ast.ForStmt:
				sm.checkLoopCapture(pass, v.Body, forLoopVars(v))
			}
			return true
		})
	}
}

// checkSignature flags by-value sync primitives in parameters, results, and
// value receivers.
func (sm *SyncMisuse) checkSignature(pass *Pass, syncName string, fd *ast.FuncDecl) {
	report := func(fl *ast.Field, where string) {
		if name := syncValueTypeName(syncName, fl.Type); name != "" {
			pass.Report(fl.Type.Pos(), "sync.%s %s by value: pass a pointer, copying a lock guards nothing", name, where)
		}
	}
	if fd.Recv != nil {
		for _, fl := range fd.Recv.List {
			report(fl, "received")
		}
	}
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			report(fl, "passed")
		}
	}
	if fd.Type.Results != nil {
		for _, fl := range fd.Type.Results.List {
			report(fl, "returned")
		}
	}
}

// checkAssign flags `a := b` / `a = b` where b is a sync primitive value
// (not a pointer, not a composite literal initializing a fresh one).
func (sm *SyncMisuse) checkAssign(pass *Pass, syncName string, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		// Initializing declarations like `var mu sync.Mutex` or
		// `mu := sync.Mutex{}` create, not copy; blank assignment discards.
		if _, isLit := rhs.(*ast.CompositeLit); isLit {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		t := pass.TypeOf(rhs)
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || !syncValueTypes[obj.Name()] {
			continue
		}
		pass.Report(rhs.Pos(), "assignment copies sync.%s value: use a pointer, the copy is a distinct lock", obj.Name())
	}
}

// checkRangeCopy flags ranging by value over elements that contain sync
// primitives directly (e.g. []sync.Mutex).
func (sm *SyncMisuse) checkRangeCopy(pass *Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	t := pass.TypeOf(rs.Value)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncValueTypes[obj.Name()] {
		pass.Report(rs.Value.Pos(), "range copies sync.%s values: iterate by index or store pointers", obj.Name())
	}
}

// syncValueTypeName returns the sync type name when expr is a bare
// sync.<T> (not *sync.<T>) for a non-copyable T, else "".
func syncValueTypeName(syncName string, expr ast.Expr) string {
	if syncName == "" {
		return ""
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != syncName || !syncValueTypes[sel.Sel.Name] {
		return ""
	}
	return sel.Sel.Name
}

// rangeLoopVars returns the identifiers bound by a range statement.
func rangeLoopVars(rs *ast.RangeStmt) map[string]bool {
	vars := map[string]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			vars[id.Name] = true
		}
	}
	return vars
}

// forLoopVars returns the identifiers declared in a for statement's init.
func forLoopVars(fs *ast.ForStmt) map[string]bool {
	vars := map[string]bool{}
	if as, ok := fs.Init.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				vars[id.Name] = true
			}
		}
	}
	return vars
}

// checkLoopCapture flags `go func() { ... loopVar ... }()` where loopVar is
// a loop variable referenced (not shadowed, not passed as an argument) by
// the goroutine closure.
func (sm *SyncMisuse) checkLoopCapture(pass *Pass, body *ast.BlockStmt, loopVars map[string]bool) {
	if body == nil || len(loopVars) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		// Variables passed as call arguments are safe snapshots, and
		// closure parameters shadow the loop variable.
		shadowed := map[string]bool{}
		for _, fld := range fl.Type.Params.List {
			for _, name := range fld.Names {
				shadowed[name.Name] = true
			}
		}
		// Identifiers that are not variable references: selector field
		// names and composite-literal keys.
		notRef := map[*ast.Ident]bool{}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.SelectorExpr:
				notRef[v.Sel] = true
			case *ast.KeyValueExpr:
				if id, ok := v.Key.(*ast.Ident); ok {
					notRef[id] = true
				}
			}
			return true
		})
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			// Local redeclarations shadow too (including range keys).
			switch v := m.(type) {
			case *ast.AssignStmt:
				if v.Tok.String() == ":=" {
					for _, lhs := range v.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							shadowed[id.Name] = true
						}
					}
				}
				return true
			case *ast.RangeStmt:
				for name := range rangeLoopVars(v) {
					shadowed[name] = true
				}
				return true
			}
			id, ok := m.(*ast.Ident)
			if !ok || notRef[id] || !loopVars[id.Name] || shadowed[id.Name] {
				return true
			}
			pass.Report(id.Pos(), "goroutine closure captures loop variable %q: pass it as an argument so the dependency is explicit and safe under pre-1.22 semantics", id.Name)
			return true
		})
		return true
	})
}
