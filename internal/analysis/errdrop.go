package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags silently discarded error results on the serve and dataio
// paths: a call used as a bare statement (or behind go/defer) whose last
// result is an error throws the error away without even acknowledging it.
// An explicit `_ =` assignment is the sanctioned way to discard — it is
// visible in review and greppable — so the analyzer ships a -fix that
// rewrites `f()` into `_ = f()` (with the arity-matched blanks).
//
// The check is scoped to internal/serve and internal/dataio (and to
// non-module fixture loads): those are the paths where a swallowed error
// corrupts sessions or snapshots. Calls into package fmt and methods of
// strings.Builder/bytes.Buffer are exempt — their error results are
// documented to be always nil or unactionable.
type ErrDrop struct{}

// Name implements Analyzer.
func (*ErrDrop) Name() string { return "errdrop" }

// Doc implements Analyzer.
func (*ErrDrop) Doc() string {
	return "flag silently discarded error results on serve/dataio paths; -fix inserts an explicit `_ =`"
}

// Run implements Analyzer.
func (a *ErrDrop) Run(pass *Pass) {
	if !errDropScope(pass) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ExprStmt:
				call, ok := v.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if blanks, ok := droppedErrArity(pass, call); ok {
					fix := &Fix{
						Path:    pass.Fset.Position(call.Pos()).Filename,
						Start:   pass.Fset.Position(call.Pos()).Offset,
						End:     pass.Fset.Position(call.Pos()).Offset,
						NewText: strings.Repeat("_, ", blanks-1) + "_ = ",
					}
					pass.ReportFix(call.Pos(), fix, "error result silently discarded; assign to _ to make the discard explicit")
				}
			case *ast.GoStmt:
				if _, ok := droppedErrArity(pass, v.Call); ok {
					pass.Report(v.Call.Pos(), "error result discarded by go statement; wrap the call to handle or log the error")
				}
			case *ast.DeferStmt:
				if _, ok := droppedErrArity(pass, v.Call); ok {
					pass.Report(v.Call.Pos(), "error result discarded by defer statement; wrap the call to handle or log the error")
				}
			}
			return true
		})
	}
}

// errDropScope limits the analyzer to serve/dataio packages; fixture
// loads (no module path) are always in scope.
func errDropScope(pass *Pass) bool {
	if pass.Path == "" {
		return true
	}
	return strings.Contains(pass.Path, "internal/serve") || strings.Contains(pass.Path, "internal/dataio")
}

// droppedErrArity reports whether the call returns an error (alone or as
// the last of a tuple) that the statement drops, returning the number of
// results, and false for exempt callees.
func droppedErrArity(pass *Pass, call *ast.CallExpr) (int, bool) {
	if errDropExempt(pass, call) {
		return 0, false
	}
	t := pass.TypeOf(call)
	if t == nil {
		return 0, false
	}
	switch v := t.(type) {
	case *types.Tuple:
		if v.Len() == 0 {
			return 0, false
		}
		if isErrorType(v.At(v.Len() - 1).Type()) {
			return v.Len(), true
		}
	default:
		if isErrorType(t) {
			return 1, true
		}
	}
	return 0, false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errDropExempt exempts callees whose error results are conventionally
// meaningless: package fmt, and the never-failing strings.Builder /
// bytes.Buffer writers.
func errDropExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil && named.Obj().Pkg() != nil {
			owner := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			switch owner {
			case "strings.Builder", "bytes.Buffer":
				return true
			}
		}
	}
	return false
}
