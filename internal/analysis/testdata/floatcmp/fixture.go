// Package fixture seeds deliberate float-comparison violations for the
// analyzer tests.
package fixture

import "math"

func exactEqual(a, b float64) bool {
	return a == b // want floatcmp "=="
}

func exactNotEqual(a, b float64) bool {
	return a != b // want floatcmp "!="
}

func literalCompare(x float64) bool {
	return x == 0.5 // want floatcmp "=="
}

func accumulated(xs []float64) bool {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum == 1 // want floatcmp "=="
}

func intFine(a, b int) bool {
	return a == b
}

func epsilonFine(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func orderingFine(a, b float64) bool {
	return a < b || a > b
}
