// Test files are exempt from floatcmp: asserting exact float output is the
// determinism contract at work. Nothing in this file may be reported.
package fixture

func assertExactInTest(got, want float64) bool {
	return got == want
}
