package lockorder

import "sync"

type G struct{ mu sync.Mutex }

type H struct{ mu sync.Mutex }

var (
	g G
	h H
)

// gh and hg invert each other, but both edges carry reviewed allow
// directives, so neither is reported.
func gh() {
	g.mu.Lock()
	h.mu.Lock() //homlint:allow lockorder -- fixture: reviewed intentional inversion
	h.mu.Unlock()
	g.mu.Unlock()
}

func hg() {
	h.mu.Lock()
	g.mu.Lock() //homlint:allow lockorder -- fixture: reviewed intentional inversion
	g.mu.Unlock()
	h.mu.Unlock()
}
