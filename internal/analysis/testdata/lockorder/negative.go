package lockorder

import "sync"

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

var (
	e E
	f F
)

// ef and efAgain acquire E.mu before F.mu consistently: a clean order.
func ef() {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

func efAgain() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// releaseBeforeNext drops E.mu before taking F.mu in the reverse order —
// no two locks are ever held together, so no edge exists.
func releaseBeforeNext() {
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// spawned acquires F.mu inside a goroutine while E.mu is held by the
// spawner; the goroutine does not inherit the held set, so no edge.
func spawned() {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		f.mu.Lock()
		f.mu.Unlock()
	}()
}
