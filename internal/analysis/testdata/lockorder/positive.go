// Package lockorder seeds lock-order inversions for the lockorder
// analyzer: direct two-mutex inversions, an inversion threaded through a
// func-value callback, and a same-class re-acquisition.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// ab establishes the order A.mu before B.mu.
func ab() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want lockorder "lock-order inversion"
	defer b.mu.Unlock()
}

// ba acquires the same two locks in the conflicting order.
func ba() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want lockorder "lock-order inversion"
	defer a.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

var (
	c C
	d D
)

// cd establishes C.mu before D.mu.
func cd() {
	c.mu.Lock()
	d.mu.Lock() // want lockorder "lock-order inversion"
	d.mu.Unlock()
	c.mu.Unlock()
}

var hook func()

func setHook() { hook = lockC }

func lockC() {
	c.mu.Lock()
	c.mu.Unlock()
}

// dViaHook inverts the order through a func-value flow edge: hook holds
// lockC, which acquires C.mu while D.mu is held.
func dViaHook() {
	d.mu.Lock()
	defer d.mu.Unlock()
	hook() // want lockorder "lock-order inversion"
}

type R struct{ mu sync.Mutex }

var r R

func lockR() {
	r.mu.Lock()
	r.mu.Unlock()
}

// reacquire calls lockR with R.mu already held — a self-deadlock, since
// sync mutexes are not reentrant.
func reacquire() {
	r.mu.Lock()
	lockR() // want lockorder "re-acquired"
	r.mu.Unlock()
}
