// Package fixture holds violations that are all covered by suppression
// directives; the suite must report nothing here.
package fixture

import "time"

func trailingAllow() time.Time {
	return time.Now() //homlint:allow determinism -- fixture: justified wall-clock read
}

func precedingAllow() time.Time {
	//homlint:allow determinism -- fixture: directive on the line above the call
	return time.Now()
}

//homlint:func-allow floatcmp -- fixture: this whole function compares exactly on purpose
func funcScope(a, b float64) bool {
	if a == b {
		return true
	}
	return a != b
}
