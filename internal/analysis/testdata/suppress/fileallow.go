//homlint:file-allow determinism -- fixture: the whole file is sanctioned timing code
package fixture

import "time"

func fileScopeOne() time.Time {
	return time.Now()
}

func fileScopeTwo(start time.Time) time.Duration {
	return time.Since(start)
}
