package hotpathalloc

import "fmt"

// cold is not marked and not reachable from any hot root: its
// allocations are fine.
func cold() string {
	var out []string
	out = append(out, fmt.Sprintf("%d", 1))
	return out[0]
}

// hotClean is a hot root whose body avoids every flagged allocation
// class: preallocated writes, pointer-shaped arguments, and an
// immediately invoked literal.
//
//homlint:hotpath
func hotClean(dst []int, xs []int) int {
	n := 0
	for i, x := range xs {
		if i < len(dst) {
			dst[i] = x
			n++
		}
	}
	ptrSink(&n)
	func() { n++ }()
	return n
}

func ptrSink(v *int) { _ = v }
