// Package hotpathalloc seeds allocation sources on and off the declared
// hot path for the hotpathalloc analyzer.
package hotpathalloc

import "fmt"

// hot is the annotated hot-path root.
//
//homlint:hotpath
func hot(xs []int) string {
	s := fmt.Sprintf("%d", len(xs)) // want hotpathalloc "fmt.Sprintf"
	helper(xs)
	return s
}

// helper is reachable from hot, so its allocation sources count too.
func helper(xs []int) {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want hotpathalloc "growing append"
	}
	sink(out[0])       // want hotpathalloc "boxed into interface"
	cb := func() int { // want hotpathalloc "closure allocation"
		return len(out)
	}
	use(cb)
}

func sink(v any) { _ = v }

func use(f func() int) { _ = f() }
