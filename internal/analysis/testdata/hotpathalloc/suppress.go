package hotpathalloc

import "fmt"

// hotSuppressed reaches a reviewed allocation carrying an allow
// directive.
//
//homlint:hotpath
func hotSuppressed() {
	allowed()
}

func allowed() {
	_ = fmt.Sprintf("once per rebuild, off the steady-state path") //homlint:allow hotpathalloc -- fixture: reviewed cold branch
}
