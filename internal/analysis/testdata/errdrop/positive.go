// Package errdrop seeds silently discarded errors for the errdrop
// analyzer.
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

func drops(path string) {
	os.Remove(path)       // want errdrop "silently discarded"
	os.Open(path)         // want errdrop "silently discarded"
	go os.Remove(path)    // want errdrop "go statement"
	defer os.Remove(path) // want errdrop "defer statement"
	_ = os.Remove(path)   // explicit discard: fine
	f, err := os.Open(path)
	_, _ = f, err
}

// exempt callees: fmt and strings.Builder error results are meaningless.
func exemptCalls() {
	fmt.Println("hello")
	var b strings.Builder
	b.WriteString("x")
	_ = b.String()
}

func suppressed(path string) {
	os.Remove(path) //homlint:allow errdrop -- fixture: best-effort cleanup
}
