// Package snapbad is the snapshotcompat positive fixture: the committed
// fingerprint was taken before the Extra field existed, and ModelVersion
// was not bumped — a hard finding.
package snapbad

import (
	"bytes"
	"encoding/gob"
)

// ModelVersion guards the snapshot wire format.
const ModelVersion = 1 // want snapshotcompat "without a ModelVersion bump"

// State is the gob-encoded snapshot payload.
type State struct {
	Active   []float64
	Observed int
	Extra    bool
}

func roundTrip(s *State) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return err
	}
	return gob.NewDecoder(&buf).Decode(s)
}
