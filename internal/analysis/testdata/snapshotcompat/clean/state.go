// Package snapclean is the snapshotcompat negative fixture: the committed
// fingerprint matches the current struct set, so the analyzer is silent.
package snapclean

import (
	"bytes"
	"encoding/gob"
)

// ModelVersion guards the snapshot wire format.
const ModelVersion = 1

// State is the gob-encoded snapshot payload.
type State struct {
	Active   []float64
	Observed int
	Inner    Nested
}

// Nested rides along inside State.
type Nested struct {
	Labels []string
}

func roundTrip(s *State) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return err
	}
	return gob.NewDecoder(&buf).Decode(s)
}
