// Package snapstale is the snapshotcompat -fix fixture: the struct set
// changed and ModelVersion was bumped, but the committed fingerprint was
// not regenerated — a finding that carries a mechanical fix.
package snapstale

import (
	"bytes"
	"encoding/gob"
)

// ModelVersion guards the snapshot wire format.
const ModelVersion = 2 // want snapshotcompat "stale after a ModelVersion change"

// State is the gob-encoded snapshot payload.
type State struct {
	Active   []float64
	Observed int
	Extra    bool
}

func roundTrip(s *State) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return err
	}
	return gob.NewDecoder(&buf).Decode(s)
}
