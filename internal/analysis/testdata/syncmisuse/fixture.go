// Package fixture seeds deliberate sync-misuse violations for the
// analyzer tests.
package fixture

import "sync"

func passByValue(mu sync.Mutex) { // want syncmisuse "passed by value"
	mu.Lock()
}

func returnByValue() sync.WaitGroup { // want syncmisuse "returned by value"
	var wg sync.WaitGroup
	return wg
}

func copyAssign() {
	var mu sync.Mutex
	mu2 := mu // want syncmisuse "assignment copies sync.Mutex"
	mu2.Lock()
}

func rangeCopy(mus []sync.Mutex) {
	for _, mu := range mus { // want syncmisuse "range copies sync.Mutex"
		mu.Lock()
	}
}

func loopCapture(items []int, out chan<- int) {
	for _, it := range items {
		go func() {
			out <- it // want syncmisuse "captures loop variable"
		}()
	}
}

func pointerFine(mu *sync.Mutex) {
	mu.Lock()
}

func freshFine() {
	mu := sync.Mutex{}
	mu.Lock()
}

func loopArgFine(items []int, out chan<- int) {
	for _, it := range items {
		go func(v int) {
			out <- v
		}(it)
	}
}

func workerPoolFine(work chan int, results []int) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = i
			}
		}()
	}
	wg.Wait()
}
