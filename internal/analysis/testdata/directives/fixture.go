// Package fixture holds malformed homlint directives; CheckDirectives must
// report each annotated line.
package fixture

//homlint:allow determinism
func missingReason() {} // the directive above lacks the "-- reason" tail

//homlint:frobnicate determinism -- no such verb
func unknownVerb() {}

//homlint:allow -- no analyzer named
func missingAnalyzer() {}
