// Package fixture seeds deliberate seed-plumbing violations for the
// analyzer tests.
package fixture

import (
	"math/rand"
	"os"
	"time"

	"highorder/internal/rng"
)

func ambientClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want seedplumb "time.Now"
}

func ambientPid() *rand.Rand {
	return rand.New(rand.NewSource(int64(os.Getpid()))) // want seedplumb "os.Getpid"
}

func ambientRngSource() *rng.Source {
	return rng.New(time.Now().Unix()) // want seedplumb "time.Now"
}

func plumbedFine(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func constantFine() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func derivedFine(src *rng.Source) *rng.Source {
	return rng.New(src.Int63())
}
