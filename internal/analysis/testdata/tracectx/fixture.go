// Package tracectx seeds outbound requests that drop the distributed
// trace context for the tracectx analyzer.
package tracectx

import (
	"net/http"
)

// TraceHeader stands in for obs.TraceHeader; the analyzer matches the
// identifier name however it is qualified.
const TraceHeader = "X-Hom-Trace"

var hc = &http.Client{}

func droppedOnBuild(url string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil) // want tracectx "without trace propagation"
	if err != nil {
		return err
	}
	_, err = hc.Do(req)
	return err
}

func droppedOnProxy(w http.ResponseWriter, r *http.Request, target string) {
	out := r.Clone(r.Context()) // want tracectx "without trace propagation"
	out.URL.Host = target
	resp, err := hc.Do(out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	_ = resp.Body.Close()
}

func propagatesDirectly(url, header string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set(TraceHeader, header)
	_, err = hc.Do(req)
	return err
}

func injectTrace(req *http.Request) { req.Header.Set("X-Hom-Trace", "x") }

func propagatesViaHelper(url string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	injectTrace(req)
	_, err = hc.Do(req)
	return err
}

// cloneWithoutSend copies a request for inspection, never sends it: not a
// proxy hop, so no finding.
func cloneWithoutSend(r *http.Request) *http.Request {
	return r.Clone(r.Context())
}

func suppressed(url string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil) //homlint:allow tracectx -- fixture: probe with no trace to forward
	if err != nil {
		return err
	}
	_, err = hc.Do(req)
	return err
}
