// Package fixture exercises the sleeploop analyzer: raw time.Sleep in a
// loop is retry/backoff pacing and must go through an injected
// clock.Sleeper; one-shot sleeps and goroutine-body sleeps are fine.
package fixture

import (
	"time"
)

func retryBackoff(call func() error) {
	backoff := 50 * time.Millisecond
	for retry := 0; retry < 5; retry++ {
		if call() == nil {
			return
		}
		time.Sleep(backoff) // want sleeploop "inject a clock.Sleeper"
		backoff *= 2
	}
}

func pollUntil(ready func() bool) {
	for !ready() {
		time.Sleep(10 * time.Millisecond) // want sleeploop "time.Sleep inside a loop"
	}
}

func rangedDrip(items []int, emit func(int)) {
	for _, it := range items {
		emit(it)
		time.Sleep(time.Second) // want sleeploop "clock.Sleeper"
	}
}

// oneShotDelay is allowed: a single sleep is not loop pacing.
func oneShotDelay() {
	time.Sleep(time.Second)
}

// goroutinePerItem is allowed: the literal's body runs on its own
// goroutine's schedule, not once per loop iteration of the spawner.
func goroutinePerItem(items []int, emit func(int)) {
	for _, it := range items {
		go func(v int) {
			time.Sleep(time.Millisecond)
			emit(v)
		}(it)
	}
}

// sanctioned carries a justification directive and is suppressed.
func sanctioned() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond) //homlint:allow sleeploop -- fixture: demonstrates the suppression form
	}
}
