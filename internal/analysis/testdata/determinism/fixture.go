// Package fixture seeds deliberate determinism violations for the
// analyzer tests. Each annotated line must be detected; unannotated code
// must stay clean.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want determinism "global math/rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want determinism "global math/rand.Shuffle"
}

func localRandFine(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func wallClock() time.Time {
	return time.Now() // want determinism "time.Now"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want determinism "time.Since"
}

func mapAccumulate(m map[string]int) []string {
	var keys []string
	for k := range m { // want determinism "range over map"
		keys = append(keys, k)
	}
	return keys
}

func mapAccumulateSortedFine(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapCountFine(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func slicePrintFine(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

// pq stands in for a priority queue / heap wrapper.
type pq struct{}

func (*pq) push(int) {}

func mapHeapPush(m map[string]int, q *pq) {
	for _, v := range m { // want determinism "pushes into a heap"
		q.push(v)
	}
}

func sliceHeapPushFine(xs []int, q *pq) {
	for _, v := range xs {
		q.push(v)
	}
}
