// Package fixture seeds deliberate span-lifecycle violations for the
// spanend analyzer tests, next to the ownership patterns it must accept.
package fixture

import (
	"errors"

	"highorder/internal/obs"
)

func deferEndOK(tr *obs.Tracer) {
	sp := tr.StartSpan("ok")
	defer sp.End()
	work()
}

func plainEndOK(tr *obs.Tracer) {
	sp := tr.StartSpan("ok")
	work()
	sp.End()
}

func childSpansOK(tr *obs.Tracer) {
	parent := tr.StartSpan("parent")
	defer parent.End()
	child := parent.StartSpan("child")
	child.SetArg("n", 1)
	child.End()
}

func discarded(tr *obs.Tracer) {
	tr.StartSpan("leak") // want spanend "started and discarded"
}

func blankBound(tr *obs.Tracer) {
	_ = tr.StartSpan("leak") // want spanend "assigned to _"
}

func neverEnded(tr *obs.Tracer) {
	sp := tr.StartSpan("leak") // want spanend "never ended"
	sp.SetArg("n", 2)
}

func leakOnEarlyReturn(tr *obs.Tracer, fail bool) error {
	sp := tr.StartSpan("maybe") // want spanend "leak past a return"
	if fail {
		return errors.New("bail")
	}
	sp.End()
	return nil
}

func endBeforeReturnOK(tr *obs.Tracer, fail bool) error {
	sp := tr.StartSpan("ok")
	work()
	sp.End()
	if fail {
		return errors.New("bail")
	}
	return nil
}

func returnedDirectlyOK(tr *obs.Tracer) *obs.Span {
	return tr.StartSpan("caller-owns")
}

func returnedVarOK(tr *obs.Tracer) *obs.Span {
	sp := tr.StartSpan("caller-owns")
	sp.SetArg("n", 3)
	return sp
}

func chainEndOK(tr *obs.Tracer) {
	tr.StartSpan("instant").End()
}

func chainWithoutEnd(tr *obs.Tracer) {
	tr.StartSpan("leak").SetArg("n", 4) // want spanend "without being bound"
}

func deferClosureEndOK(tr *obs.Tracer) {
	sp := tr.StartSpan("ok")
	defer func() { sp.End() }()
	work()
}

func passedToHelperOK(tr *obs.Tracer) {
	sp := tr.StartSpan("handed-off")
	finish(sp)
}

func finish(sp *obs.Span) { sp.End() }

func work() {}
