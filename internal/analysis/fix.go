package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ApplyFixes applies every mechanical fix carried by the diagnostics and
// returns how many were applied plus the diagnostics that had no fix.
// Edits within one file are applied back-to-front so earlier offsets stay
// valid; whole-file fixes (End == -1) replace or create the target.
func ApplyFixes(diags []Diagnostic) (applied int, remaining []Diagnostic, err error) {
	type edit struct{ fix *Fix }
	byFile := map[string][]edit{}
	for _, d := range diags {
		if d.Fix == nil {
			remaining = append(remaining, d)
			continue
		}
		byFile[d.Fix.Path] = append(byFile[d.Fix.Path], edit{fix: d.Fix})
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, path := range files {
		edits := byFile[path]
		// A whole-file fix supersedes everything else targeting the file.
		var whole *Fix
		for _, e := range edits {
			if e.fix.End == -1 {
				whole = e.fix
				break
			}
		}
		if whole != nil {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return applied, remaining, fmt.Errorf("analysis: applying fix: %w", err)
			}
			if err := os.WriteFile(path, []byte(whole.NewText), 0o644); err != nil {
				return applied, remaining, fmt.Errorf("analysis: applying fix: %w", err)
			}
			applied += len(edits)
			continue
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return applied, remaining, fmt.Errorf("analysis: applying fix: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].fix.Start > edits[j].fix.Start })
		for _, e := range edits {
			f := e.fix
			if f.Start < 0 || f.End > len(src) || f.Start > f.End {
				return applied, remaining, fmt.Errorf("analysis: fix out of range in %s [%d,%d)", path, f.Start, f.End)
			}
			src = append(src[:f.Start:f.Start], append([]byte(f.NewText), src[f.End:]...)...)
			applied++
		}
		if err := os.WriteFile(path, src, 0o644); err != nil {
			return applied, remaining, fmt.Errorf("analysis: applying fix: %w", err)
		}
	}
	return applied, remaining, nil
}
