package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SnapshotCompat guards the on-disk model format: it fingerprints the
// gob-encoded Snapshot/Restore struct set and fails when the set changes
// without a ModelVersion bump.
//
// The per-package phase records every type that enters a gob stream —
// arguments of gob.Register/RegisterName and of (*gob.Encoder).Encode /
// (*gob.Decoder).Decode — plus every ModelVersion constant, as facts. The
// join expands the root types through their exported fields (gob only
// encodes exported fields; expansion stops at types with a custom
// GobEncode), renders a canonical fingerprint, and compares it against the
// committed lint/snapshot_fingerprint.txt:
//
//   - fingerprint file missing          -> finding with a -fix that creates it
//   - fields changed, same ModelVersion -> hard finding (bump the version)
//   - fields changed, version bumped    -> finding with a -fix that
//     regenerates the file
//
// A snapshot written by version N must never be parsed as version N' with
// silently different field semantics — exactly the drift this check makes
// impossible to merge unnoticed.
type SnapshotCompat struct{}

// Name implements Analyzer.
func (*SnapshotCompat) Name() string { return "snapshotcompat" }

// Doc implements Analyzer.
func (*SnapshotCompat) Doc() string {
	return "fingerprint the gob snapshot struct set and require a ModelVersion bump on change"
}

// FingerprintFile is the committed fingerprint path, relative to the
// analysis root.
const FingerprintFile = "lint/snapshot_fingerprint.txt"

// snapshotKey is the sentinel fact key for program-level snapshot facts.
var snapshotKey = new(int)

// gobRootFact records one type observed entering a gob stream.
type gobRootFact struct {
	t   types.Type
	pos token.Pos
}

// AFact implements Fact.
func (*gobRootFact) AFact() {}

// modelVersionFact records one ModelVersion constant.
type modelVersionFact struct {
	pkg string
	val string
	pos token.Pos
}

// AFact implements Fact.
func (*modelVersionFact) AFact() {}

// Run records gob root types and ModelVersion constants as facts.
func (a *SnapshotCompat) Run(pass *Pass) {
	if !pass.Canonical {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				if arg, ok := gobRootArg(pass, v); ok {
					if t := pass.TypeOf(arg); t != nil {
						pass.Prog.Facts.Export(a.Name(), snapshotKey, &gobRootFact{t: t, pos: arg.Pos()})
					}
				}
			case *ast.ValueSpec:
				for _, name := range v.Names {
					if name.Name != "ModelVersion" {
						continue
					}
					c, ok := pass.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					pass.Prog.Facts.Export(a.Name(), snapshotKey, &modelVersionFact{
						pkg: pass.Name,
						val: c.Val().ExactString(),
						pos: name.Pos(),
					})
				}
			}
			return true
		})
	}
}

// gobRootArg matches gob.Register(x), gob.RegisterName(name, x),
// (*gob.Encoder).Encode(x) and (*gob.Decoder).Decode(x), returning the
// payload argument.
func gobRootArg(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	if fn.Pkg().Path() == "encoding/gob" {
		switch fn.Name() {
		case "Register", "RegisterName":
			return call.Args[len(call.Args)-1], true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "encoding/gob" {
			switch named.Obj().Name() + "." + fn.Name() {
			case "Encoder.Encode", "Decoder.Decode", "Encoder.EncodeValue", "Decoder.DecodeValue":
				return call.Args[0], true
			}
		}
	}
	return nil, false
}

// Join renders the fingerprint and compares it against the committed file.
func (a *SnapshotCompat) Join(prog *Program, report func(Diagnostic)) {
	var roots []*gobRootFact
	var versions []*modelVersionFact
	for _, f := range prog.Facts.Import(a.Name(), snapshotKey) {
		switch v := f.(type) {
		case *gobRootFact:
			roots = append(roots, v)
		case *modelVersionFact:
			versions = append(versions, v)
		}
	}
	if len(roots) == 0 {
		return
	}

	modulePkgs := map[*types.Package]bool{}
	for _, pass := range prog.Canon {
		if pass.Pkg != nil {
			modulePkgs[pass.Pkg] = true
		}
	}

	version := "0"
	reportPos := roots[0].pos
	if len(versions) > 0 {
		sort.Slice(versions, func(i, j int) bool { return versions[i].pkg < versions[j].pkg })
		var vals []string
		seen := map[string]bool{}
		for _, v := range versions {
			s := v.val
			if len(versions) > 1 {
				s = v.pkg + "=" + v.val
			}
			if !seen[s] {
				seen[s] = true
				vals = append(vals, s)
			}
		}
		version = strings.Join(vals, ",")
		reportPos = versions[0].pos
	}

	current := renderFingerprint(version, roots, modulePkgs)
	path := filepath.Join(prog.Root, filepath.FromSlash(FingerprintFile))
	regen := &Fix{Path: path, Start: 0, End: -1, NewText: current}

	recorded, err := os.ReadFile(path)
	if err != nil {
		report(Diagnostic{
			Pos: prog.Fset.Position(reportPos),
			Message: fmt.Sprintf("gob snapshot fingerprint %s is missing; run `homlint -fix` to create it",
				FingerprintFile),
			Fix: regen,
		})
		return
	}
	if string(recorded) == current {
		return
	}
	if recordedVersion(string(recorded)) != version {
		report(Diagnostic{
			Pos: prog.Fset.Position(reportPos),
			Message: fmt.Sprintf("gob snapshot fingerprint %s is stale after a ModelVersion change; run `homlint -fix` to regenerate it",
				FingerprintFile),
			Fix: regen,
		})
		return
	}
	report(Diagnostic{
		Pos: prog.Fset.Position(reportPos),
		Message: fmt.Sprintf("gob snapshot struct set changed without a ModelVersion bump (%s); bump ModelVersion, then run `homlint -fix` to regenerate %s",
			fingerprintDiff(string(recorded), current), FingerprintFile),
	})
}

// renderFingerprint walks the root set's exported-field closure and
// renders the canonical fingerprint text.
func renderFingerprint(version string, roots []*gobRootFact, modulePkgs map[*types.Package]bool) string {
	qual := func(p *types.Package) string { return p.Name() }
	lineSet := map[string]bool{}
	queued := map[string]bool{}
	var queue []*types.Named

	enqueue := func(t types.Type) {
		named := namedOf(t)
		if named == nil || named.Obj().Pkg() == nil || !modulePkgs[named.Obj().Pkg()] {
			return
		}
		name := ownerName(named)
		if !queued[name] {
			queued[name] = true
			queue = append(queue, named)
		}
	}
	// Named module types referenced anywhere inside a field type join the
	// closure too (slices of structs, maps of structs, ...).
	var scanRefs func(t types.Type, depth int)
	scanRefs = func(t types.Type, depth int) {
		if depth > 10 || t == nil {
			return
		}
		switch v := t.(type) {
		case *types.Named:
			enqueue(v)
		case *types.Pointer:
			scanRefs(v.Elem(), depth+1)
		case *types.Slice:
			scanRefs(v.Elem(), depth+1)
		case *types.Array:
			scanRefs(v.Elem(), depth+1)
		case *types.Map:
			scanRefs(v.Key(), depth+1)
			scanRefs(v.Elem(), depth+1)
		}
	}

	for _, r := range roots {
		t := r.t
		scanRefs(t, 0)
		if named := namedOf(t); named != nil && (named.Obj().Pkg() == nil || !modulePkgs[named.Obj().Pkg()]) {
			lineSet[ownerName(named)+": external "+types.TypeString(named.Underlying(), qual)] = true
		}
	}

	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		name := ownerName(named)
		if hasGobEncode(named) {
			lineSet[name+": custom GobEncode"] = true
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			lineSet[name+": "+types.TypeString(named.Underlying(), qual)] = true
			scanRefs(named.Underlying(), 0)
			continue
		}
		exported := 0
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !field.Exported() {
				continue
			}
			exported++
			lineSet[fmt.Sprintf("%s.%s: %s", name, field.Name(), types.TypeString(field.Type(), qual))] = true
			scanRefs(field.Type(), 0)
		}
		if exported == 0 {
			lineSet[name+": no exported fields"] = true
		}
	}

	lines := make([]string, 0, len(lineSet))
	for l := range lineSet {
		lines = append(lines, l)
	}
	sort.Strings(lines)

	var b strings.Builder
	b.WriteString("# gob snapshot fingerprint — maintained by homlint snapshotcompat.\n")
	b.WriteString("# After changing any field below, bump ModelVersion and run `go run ./cmd/homlint -fix ./...`.\n")
	b.WriteString("model-version: " + version + "\n")
	for _, l := range lines {
		b.WriteString(l + "\n")
	}
	return b.String()
}

// hasGobEncode reports whether the type (or its pointer) provides a
// custom gob encoding.
func hasGobEncode(named *types.Named) bool {
	for _, name := range []string{"GobEncode", "MarshalBinary"} {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}

// recordedVersion extracts the "model-version:" line of a fingerprint file.
func recordedVersion(text string) string {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "model-version:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// fingerprintDiff summarizes the line-level difference between two
// fingerprints, capped for readability.
func fingerprintDiff(before, after string) string {
	oldSet := map[string]bool{}
	newSet := map[string]bool{}
	for _, l := range strings.Split(before, "\n") {
		if l != "" && !strings.HasPrefix(l, "#") {
			oldSet[l] = true
		}
	}
	for _, l := range strings.Split(after, "\n") {
		if l != "" && !strings.HasPrefix(l, "#") {
			newSet[l] = true
		}
	}
	var added, removed []string
	for l := range newSet {
		if !oldSet[l] {
			added = append(added, l)
		}
	}
	for l := range oldSet {
		if !newSet[l] {
			removed = append(removed, l)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	var parts []string
	const maxDiff = 4
	for i, l := range added {
		if i == maxDiff {
			parts = append(parts, fmt.Sprintf("+%d more", len(added)-maxDiff))
			break
		}
		parts = append(parts, "+ "+l)
	}
	for i, l := range removed {
		if i == maxDiff {
			parts = append(parts, fmt.Sprintf("-%d more", len(removed)-maxDiff))
			break
		}
		parts = append(parts, "- "+l)
	}
	if len(parts) == 0 {
		return "formatting drift"
	}
	return strings.Join(parts, "; ")
}
