package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point expressions. The cluster
// ΔQ ordering, model-similarity distances, and active-probability updates
// are all float accumulations; exact equality on such values depends on
// evaluation order and optimization level, which is exactly the kind of
// silent irreproducibility this repository bans. Compare against an
// epsilon, restructure to integer counts, or — where exact comparison is
// the point (sentinel defaults, deterministic tie-breaks on already-equal
// values) — suppress with //homlint:allow floatcmp -- <why exactness is
// intended>.
//
// Test files are exempt: asserting exact float output in tests is the
// determinism contract at work, not a bug.
type FloatCmp struct{}

// Name implements Analyzer.
func (*FloatCmp) Name() string { return "floatcmp" }

// Doc implements Analyzer.
func (*FloatCmp) Doc() string {
	return "flags ==/!= between floating-point expressions outside tests"
}

// Run implements Analyzer.
func (fc *FloatCmp) Run(pass *Pass) {
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if fc.isFloat(pass, be.X) || fc.isFloat(pass, be.Y) {
				pass.Report(be.OpPos, "%s between floating-point values: use an epsilon comparison, or suppress with a reason if exact equality is intended", be.Op)
			}
			return true
		})
	}
}

// isFloat reports whether e is float-typed, preferring type info and
// falling back to the syntactic float-literal check when the checker could
// not resolve the expression.
func (*FloatCmp) isFloat(pass *Pass, e ast.Expr) bool {
	if t := pass.TypeOf(e); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok {
			return b.Info()&types.IsFloat != 0
		}
		return false
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.FLOAT
}
