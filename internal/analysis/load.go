package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader parses and type-checks packages for analysis. A single Loader
// shares a FileSet and an import cache across packages, so repeated
// standard-library imports are resolved once.
//
// The v2 loader is module-aware: LoadModule type-checks every package of a
// module in dependency order, so imports of sibling packages resolve to
// their real, fully checked types instead of empty stubs. Analyzers
// therefore see complete type information for intra-module calls — the
// foundation the call graph and the cross-package fact store build on.
type Loader struct {
	fset *token.FileSet
	// std resolves standard-library imports from $GOROOT source, giving the
	// analyzers real types for sync.Mutex, time.Time, math/rand, etc.
	std types.Importer
	// modulePath is the module path from go.mod ("" outside a module);
	// imports underneath it resolve through checked.
	modulePath string
	// checked caches fully type-checked module packages by import path.
	checked map[string]*types.Package
	// stubs caches the empty placeholder packages handed out for imports the
	// importer cannot resolve, so the type checker degrades gracefully
	// instead of failing the whole package.
	stubs map[string]*types.Package
}

// NewLoader returns a ready Loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		checked: map[string]*types.Package{},
		stubs:   map[string]*types.Package{},
	}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer. Module-internal paths resolve to the
// fully checked package when it has already been checked (LoadModule
// guarantees dependency order); standard-library packages resolve from
// source; anything else gets an empty stub so selector expressions on it
// simply have no type information.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		if pkg, ok := l.checked[path]; ok {
			return pkg, nil
		}
		return l.stub(path), nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	return l.stub(path), nil
}

func (l *Loader) stub(path string) *types.Package {
	if pkg, ok := l.stubs[path]; ok {
		return pkg
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	l.stubs[path] = pkg
	return pkg
}

// unit is one parsed directory before type-checking: the canonical
// (non-test) files of one package clause plus its test variants.
type unit struct {
	dir     string
	path    string // import path ("" outside a module)
	name    string // package name (without _test suffix)
	files   []*File
	inTest  []*File // package <name> _test.go files
	extTest []*File // package <name>_test files
	imports []string
}

// LoadModule loads the whole source tree rooted at root as one Program.
// When root holds a go.mod, import paths are derived from the module path
// and every intra-module import resolves to its fully checked package;
// without one (fixture trees), packages are checked independently with
// stubbed non-standard imports. The walk skips testdata, vendor, hidden
// and underscore-prefixed directories.
func (l *Loader) LoadModule(root string) (*Program, error) {
	return l.load(root, true)
}

// LoadDir loads the single directory dir as a Program without recursion —
// the fixture-package entry point. Each package clause found in the
// directory becomes its own canonical pass.
func (l *Loader) LoadDir(dir string) (*Program, error) {
	return l.load(dir, false)
}

func (l *Loader) load(root string, recurse bool) (*Program, error) {
	l.modulePath = readModulePath(filepath.Join(root, "go.mod"))

	dirs := []string{root}
	if recurse {
		dirs = nil
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs = append(dirs, path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		sort.Strings(dirs)
	}

	var units []*unit
	for _, dir := range dirs {
		us, err := l.parseDir(root, dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}

	ordered := topoSort(units)

	prog := &Program{
		Fset:       l.fset,
		Root:       root,
		ModulePath: l.modulePath,
		Facts:      newFactStore(),
	}
	for _, u := range ordered {
		canonical := l.check(u, u.files)
		canonical.Canonical = true
		if u.path != "" {
			l.checked[u.path] = canonical.Pkg
		}
		prog.Canon = append(prog.Canon, canonical)
		prog.Passes = append(prog.Passes, canonical)
		if len(u.inTest) > 0 {
			// Re-check the package with its in-package test files so test
			// code gets real types too; only test-file diagnostics are kept
			// (the canonical pass already covers the rest).
			aug := l.check(u, append(append([]*File{}, u.files...), u.inTest...))
			aug.testOnly = true
			prog.Passes = append(prog.Passes, aug)
		}
		if len(u.extTest) > 0 {
			ext := l.check(&unit{dir: u.dir, path: u.path, name: u.name + "_test"}, u.extTest)
			prog.Passes = append(prog.Passes, ext)
		}
	}
	for _, p := range prog.Passes {
		p.Prog = prog
	}
	return prog, nil
}

// parseDir parses every .go file directly inside dir and groups the files
// into units: one per non-test package clause, with in-package and
// external test files attached to their package's unit. A directory whose
// only files are test files still yields a unit (with no canonical files).
func (l *Loader) parseDir(root, dir string) ([]*unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	byName := map[string]*unit{}
	get := func(name string) *unit {
		u, ok := byName[name]
		if !ok {
			u = &unit{dir: dir, name: name, path: importPath(l.modulePath, root, dir)}
			byName[name] = u
		}
		return u
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		file := &File{Path: path, AST: f, Test: strings.HasSuffix(name, "_test.go")}
		pkg := f.Name.Name
		switch {
		case file.Test && strings.HasSuffix(pkg, "_test"):
			u := get(strings.TrimSuffix(pkg, "_test"))
			u.extTest = append(u.extTest, file)
		case file.Test:
			u := get(pkg)
			u.inTest = append(u.inTest, file)
		default:
			u := get(pkg)
			u.files = append(u.files, file)
			for _, imp := range f.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil {
					u.imports = append(u.imports, p)
				}
			}
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var units []*unit
	for _, name := range names {
		u := byName[name]
		for _, fs := range [][]*File{u.files, u.inTest, u.extTest} {
			sort.Slice(fs, func(i, j int) bool { return fs[i].Path < fs[j].Path })
		}
		units = append(units, u)
	}
	return units, nil
}

// check type-checks one file set of a unit and assembles its Pass. Type
// errors are tolerated (imports outside the module and the standard
// library are stubbed by design); the analyzers fall back to syntax where
// Info has gaps.
func (l *Loader) check(u *unit, files []*File) *Pass {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    l,
		Error:       func(error) {}, // best-effort: stubbed imports produce errors by design
		FakeImportC: true,
	}
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.AST
	}
	checkPath := u.path
	if checkPath == "" {
		checkPath = u.dir + ":" + u.name
	}
	// The returned error only repeats what conf.Error already swallowed.
	pkg, _ := conf.Check(checkPath, l.fset, asts, info)
	return &Pass{
		Fset:  l.fset,
		Dir:   u.dir,
		Path:  u.path,
		Name:  u.name,
		Files: files,
		Info:  info,
		Pkg:   pkg,
	}
}

// topoSort orders units so every unit follows the module units it imports,
// breaking ties (and any accidental cycles) by import path then directory.
func topoSort(units []*unit) []*unit {
	byPath := map[string]*unit{}
	for _, u := range units {
		if u.path == "" {
			continue
		}
		// Prefer importable (non-main) packages when a directory holds both.
		if prev, ok := byPath[u.path]; !ok || prev.name == "main" {
			byPath[u.path] = u
		}
	}
	var (
		out     []*unit
		visited = map[*unit]int{} // 0 new, 1 visiting, 2 done
		visit   func(u *unit)
	)
	visit = func(u *unit) {
		if visited[u] != 0 {
			return
		}
		visited[u] = 1
		deps := append([]string(nil), u.imports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if dep, ok := byPath[imp]; ok && dep != u && visited[dep] != 1 {
				visit(dep)
			}
		}
		visited[u] = 2
		out = append(out, u)
	}
	sorted := append([]*unit(nil), units...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].dir != sorted[j].dir {
			return sorted[i].dir < sorted[j].dir
		}
		return sorted[i].name < sorted[j].name
	})
	for _, u := range sorted {
		visit(u)
	}
	return out
}

// importPath maps dir (under root) to its import path within the module,
// or "" outside a module.
func importPath(modulePath, root, dir string) string {
	if modulePath == "" {
		return ""
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return ""
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return modulePath
	}
	return modulePath + "/" + rel
}

// readModulePath extracts the module path from a go.mod file, or "".
func readModulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
