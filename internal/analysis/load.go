package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages for analysis. A single Loader
// shares a FileSet and an import cache across packages, so repeated
// standard-library imports are resolved once.
type Loader struct {
	fset *token.FileSet
	// std resolves standard-library imports from $GOROOT source, giving the
	// analyzers real types for sync.Mutex, time.Time, math/rand, etc.
	std types.Importer
	// stubs caches the empty placeholder packages handed out for imports the
	// source importer cannot resolve (intra-module paths, chiefly), so the
	// type checker degrades gracefully instead of failing the whole package.
	stubs map[string]*types.Package
}

// NewLoader returns a ready Loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		stubs: map[string]*types.Package{},
	}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: standard-library packages resolve
// fully; anything else gets an empty stub so selector expressions on it
// simply have no type information.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	if pkg, ok := l.stubs[path]; ok {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	l.stubs[path] = pkg
	return pkg, nil
}

// LoadDir parses every .go file directly inside dir (no recursion) and
// returns one Pass per package clause found there (a directory can hold a
// package and its _test variant, or package main next to a library in
// malformed trees; each is checked independently).
func (l *Loader) LoadDir(dir string) ([]*Pass, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	byPkg := map[string][]*File{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		pkgName := f.Name.Name
		byPkg[pkgName] = append(byPkg[pkgName], &File{
			Path: path,
			AST:  f,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	pkgNames := make([]string, 0, len(byPkg))
	for name := range byPkg {
		pkgNames = append(pkgNames, name)
	}
	sort.Strings(pkgNames)

	var passes []*Pass
	for _, name := range pkgNames {
		files := byPkg[name]
		sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
		passes = append(passes, l.check(dir, name, files))
	}
	return passes, nil
}

// check type-checks one package best-effort and assembles its Pass. Type
// errors are expected (stubbed imports guarantee some) and ignored; the
// analyzers fall back to syntax where Info has gaps.
func (l *Loader) check(dir, name string, files []*File) *Pass {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    l,
		Error:       func(error) {}, // best-effort: stubbed imports produce errors by design
		FakeImportC: true,
	}
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.AST
	}
	// The returned error only repeats what conf.Error already swallowed.
	_, _ = conf.Check(dir+":"+name, l.fset, asts, info)
	return &Pass{Fset: l.fset, Dir: dir, Files: files, Info: info}
}

// LoadTree walks root recursively and loads every package directory,
// skipping testdata, vendor, hidden directories, and .git. Returned passes
// are ordered by directory then package name.
func (l *Loader) LoadTree(root string) ([]*Pass, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	sort.Strings(dirs)
	var passes []*Pass
	for _, dir := range dirs {
		hasGo, err := dirHasGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if !hasGo {
			continue
		}
		ps, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		passes = append(passes, ps...)
	}
	return passes, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, fmt.Errorf("analysis: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true, nil
		}
	}
	return false, nil
}
