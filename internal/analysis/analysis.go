// Package analysis is a small stdlib-only static-analysis framework plus
// the project-specific analyzers that enforce the repository's determinism
// and concurrency invariants. The paper's pipeline — concept clustering,
// transition estimation, active-probability tracking — is only reproducible
// when every stage is bit-for-bit deterministic under a seed, so the things
// Go makes easy to get wrong silently (global math/rand state, wall-clock
// reads, map-iteration order, copied locks, races) are checked mechanically
// by `go run ./cmd/homlint ./...` rather than by convention.
//
// The framework deliberately mirrors the shape of golang.org/x/tools/go/
// analysis without depending on it: an Analyzer runs over one package Pass
// and reports position-tagged Diagnostics. Findings are suppressed with
// `//homlint:allow <analyzer> -- reason` directives (see directives.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Pos is the resolved file:line:column of the finding.
	Pos token.Position
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Message describes the violation and, where possible, the fix.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form
// consumed by editors.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check over a package.
type Analyzer interface {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //homlint:allow directives.
	Name() string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc() string
	// Run inspects the pass and reports findings via pass.Report.
	Run(pass *Pass)
}

// File is one parsed source file of a pass.
type File struct {
	// Path is the file path as given to the loader.
	Path string
	// AST is the parsed file, with comments.
	AST *ast.File
	// Test reports whether this is a _test.go file.
	Test bool
}

// Pass carries one package's syntax and (best-effort) type information
// through the analyzers, and collects their diagnostics.
type Pass struct {
	// Fset resolves token positions for every file of the pass.
	Fset *token.FileSet
	// Dir is the package directory, relative to the analysis root.
	Dir string
	// Files are the package's source files, sorted by path.
	Files []*File
	// Info is the result of type-checking the package with full standard-
	// library resolution but stubbed intra-module imports, so types that
	// come from other packages of this module may be missing or invalid.
	// Analyzers must treat it as best-effort and fall back to syntax.
	Info *types.Info

	analyzer string
	diags    []Diagnostic
}

// Report records a finding at pos for the currently running analyzer.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when type-checking could not
// resolve it (e.g. it involves a stubbed intra-module import).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	t := p.Info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

// ImportName returns the local name under which file imports path, or ""
// when the file does not import it. Dot and blank imports return "".
func ImportName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if imp.Path.Value != `"`+path+`"` {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		// Default name: the last path element.
		p := path
		for i := len(p) - 1; i >= 0; i-- {
			if p[i] == '/' {
				return p[i+1:]
			}
		}
		return p
	}
	return ""
}

// IsPkgCall reports whether call is pkgName.fn(...) for the given local
// package name, returning the selector for position reporting.
func IsPkgCall(call *ast.CallExpr, pkgName, fn string) (*ast.SelectorExpr, bool) {
	if pkgName == "" {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return nil, false
	}
	return sel, true
}

// Run executes the analyzers over the pass and returns the diagnostics that
// survive suppression directives, sorted by position.
func Run(pass *Pass, analyzers []Analyzer) []Diagnostic {
	sup := collectDirectives(pass)
	var out []Diagnostic
	for _, a := range analyzers {
		pass.analyzer = a.Name()
		pass.diags = pass.diags[:0]
		a.Run(pass)
		for _, d := range pass.diags {
			if !sup.allows(d) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer so
// output is deterministic across runs and worker orderings.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		&Determinism{},
		&SeedPlumb{},
		&FloatCmp{},
		&SyncMisuse{},
		&SpanEnd{},
		&SleepLoop{},
	}
}

// ByName returns the subset of All whose names appear in names, preserving
// suite order, or an error naming the first unknown entry.
func ByName(names []string) ([]Analyzer, error) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name()] = true
	}
	want := map[string]bool{}
	for _, n := range names {
		if !known[n] {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		want[n] = true
	}
	var out []Analyzer
	for _, a := range All() {
		if want[a.Name()] {
			out = append(out, a)
		}
	}
	return out, nil
}
