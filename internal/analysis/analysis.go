// Package analysis is a small stdlib-only static-analysis framework plus
// the project-specific analyzers that enforce the repository's determinism
// and concurrency invariants. The paper's pipeline — concept clustering,
// transition estimation, active-probability tracking — is only reproducible
// when every stage is bit-for-bit deterministic under a seed, so the things
// Go makes easy to get wrong silently (global math/rand state, wall-clock
// reads, map-iteration order, copied locks, races, lock-order inversions,
// hot-path allocations, silent snapshot-format drift) are checked
// mechanically by `go run ./cmd/homlint ./...` rather than by convention.
//
// The v2 engine is whole-module and flow-aware. A Loader checks every
// package of the module in dependency order, so intra-module imports carry
// complete type information; the Program ties the checked packages to a
// static call graph (callgraph.go) and a cross-package fact store
// (facts.go). Per-package analyzers run in parallel across packages and
// export facts; module analyzers join afterwards, propagating findings
// across function and package boundaries (lock-order cycles, hot-path
// reachability, the gob snapshot fingerprint).
//
// The framework deliberately mirrors the shape of golang.org/x/tools/go/
// analysis without depending on it: an Analyzer runs over one package Pass
// and reports position-tagged Diagnostics; a ModuleAnalyzer additionally
// joins over the whole Program. Findings are suppressed with
// `//homlint:allow <analyzer> -- reason` directives (see directives.go) or
// recorded in an auditable baseline file (baseline.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
	"time"

	"highorder/internal/clock"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Pos is the resolved file:line:column of the finding.
	Pos token.Position
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Message describes the violation and, where possible, the fix.
	Message string
	// Fix, when non-nil, is a mechanical edit that resolves the finding;
	// cmd/homlint applies it under -fix.
	Fix *Fix
}

// Fix is one mechanical text edit: replace [Start,End) of the file at Path
// with NewText. Offsets are byte offsets; Start==End inserts. A Fix whose
// End is -1 replaces the whole file (used for generated artifacts like the
// snapshot fingerprint).
type Fix struct {
	Path    string
	Start   int
	End     int
	NewText string
}

// String renders the diagnostic in the conventional file:line:col form
// consumed by editors.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check over a package.
type Analyzer interface {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //homlint:allow directives.
	Name() string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc() string
	// Run inspects the pass and reports findings via pass.Report. For a
	// ModuleAnalyzer this is the parallel per-package phase, which
	// typically exports facts rather than reporting.
	Run(pass *Pass)
}

// ModuleAnalyzer is an Analyzer that needs the whole program: after every
// package's Run has completed (and its facts are exported), Join runs once
// with the assembled Program and reports cross-package findings.
type ModuleAnalyzer interface {
	Analyzer
	Join(prog *Program, report func(Diagnostic))
}

// File is one parsed source file of a pass.
type File struct {
	// Path is the file path as given to the loader.
	Path string
	// AST is the parsed file, with comments.
	AST *ast.File
	// Test reports whether this is a _test.go file.
	Test bool
}

// Pass carries one package's syntax and type information through the
// analyzers, and collects their diagnostics.
type Pass struct {
	// Fset resolves token positions for every file of the pass.
	Fset *token.FileSet
	// Dir is the package directory, relative to the analysis root.
	Dir string
	// Path is the package import path, or "" outside a module.
	Path string
	// Name is the package name.
	Name string
	// Files are the pass's source files, sorted by path.
	Files []*File
	// Info is the result of type-checking the pass. Within a module load,
	// intra-module imports resolve to fully checked packages; imports
	// outside the module and the standard library are stubbed, so analyzers
	// must still treat Info as best-effort and fall back to syntax.
	Info *types.Info
	// Pkg is the checked package (possibly marked invalid on stub-induced
	// errors; still usable for qualified naming).
	Pkg *types.Package
	// Prog is the owning program.
	Prog *Program
	// Canonical marks the non-test pass of a package — the pass the call
	// graph and module analyzers are built from.
	Canonical bool

	// testOnly marks a test-augmented re-check of a canonical package:
	// only diagnostics anchored in test files are kept, the rest being
	// duplicates of the canonical pass.
	testOnly bool

	analyzer string
	diags    []Diagnostic
}

// Report records a finding at pos for the currently running analyzer.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding carrying a mechanical fix.
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// TypeOf returns the type of e, or nil when type-checking could not
// resolve it (e.g. it involves a stubbed import).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	t := p.Info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

// Program is one loaded source tree: every pass of every package, the
// shared fact store, and the lazily built call graph.
type Program struct {
	// Fset resolves positions program-wide.
	Fset *token.FileSet
	// Root is the directory the program was loaded from.
	Root string
	// ModulePath is the module path from go.mod, or "".
	ModulePath string
	// Passes is every pass in analysis order (canonical, test-augmented,
	// external-test per package; packages in dependency order).
	Passes []*Pass
	// Canon is the canonical (non-test) passes only, in dependency order —
	// the program slice module analyzers and the call graph operate on.
	Canon []*Pass
	// Facts is the cross-package fact store.
	Facts *FactStore

	graphOnce sync.Once
	graph     *CallGraph
}

// Graph returns the program's call graph, building it on first use.
func (prog *Program) Graph() *CallGraph {
	prog.graphOnce.Do(func() { prog.graph = buildCallGraph(prog) })
	return prog.graph
}

// AnalyzerTiming is one analyzer's accumulated wall time across the run.
type AnalyzerTiming struct {
	Analyzer string
	Duration time.Duration
	Findings int
}

// RunOptions tune a program-wide analysis run.
type RunOptions struct {
	// Workers bounds the per-package parallelism; <= 0 selects the number
	// of passes (fully parallel, the scheduler's cap applies anyway).
	Workers int
	// Clock supplies per-analyzer timing; nil selects the wall clock.
	Clock clock.Clock
}

// Result is the outcome of a program-wide run.
type Result struct {
	// Diagnostics are the findings surviving suppression directives,
	// sorted by position.
	Diagnostics []Diagnostic
	// Timings is the per-analyzer accumulated wall time, in suite order.
	Timings []AnalyzerTiming
}

// Run executes the analyzers over every pass of the program — packages in
// parallel — then runs each ModuleAnalyzer's join, and returns the
// diagnostics surviving suppression directives, sorted by position.
// Malformed suppression directives are themselves reported. The output is
// deterministic for any worker count.
func (prog *Program) Run(analyzers []Analyzer, opts RunOptions) Result {
	clk := opts.Clock.OrWall()
	workers := opts.Workers
	if workers <= 0 || workers > len(prog.Passes) {
		workers = len(prog.Passes)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu      sync.Mutex
		timings = map[string]*AnalyzerTiming{}
		sups    = make([]*suppressions, len(prog.Passes))
		perPass = make([][]Diagnostic, len(prog.Passes))
	)
	addTime := func(name string, d time.Duration, findings int) {
		mu.Lock()
		t, ok := timings[name]
		if !ok {
			t = &AnalyzerTiming{Analyzer: name}
			timings[name] = t
		}
		t.Duration += d
		t.Findings += findings
		mu.Unlock()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pass := prog.Passes[i]
				sups[i] = collectDirectives(pass)
				var out []Diagnostic
				for _, a := range analyzers {
					pass.analyzer = a.Name()
					pass.diags = pass.diags[:0]
					start := clk()
					a.Run(pass)
					kept := 0
					for _, d := range pass.diags {
						if pass.testOnly && !isTestFile(pass, d.Pos.Filename) {
							continue
						}
						if !sups[i].allows(d) {
							out = append(out, d)
							kept++
						}
					}
					addTime(a.Name(), clk().Sub(start), kept)
				}
				for _, d := range sups[i].malformed {
					if pass.testOnly && !isTestFile(pass, d.Pos.Filename) {
						continue
					}
					out = append(out, d)
				}
				perPass[i] = out
			}
		}()
	}
	for i := range prog.Passes {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Malformed-directive findings from test-augmented passes duplicate the
	// canonical pass for non-test files; the dedup below handles them.
	var out []Diagnostic
	for _, ds := range perPass {
		out = append(out, ds...)
	}

	// Module joins: suppression is checked against the directives of every
	// pass, keyed by the diagnostic's file.
	allows := func(d Diagnostic) bool {
		for _, s := range sups {
			if s != nil && s.allows(d) {
				return true
			}
		}
		return false
	}
	for _, a := range analyzers {
		ma, ok := a.(ModuleAnalyzer)
		if !ok {
			continue
		}
		start := clk()
		kept := 0
		ma.Join(prog, func(d Diagnostic) {
			d.Analyzer = ma.Name()
			if !allows(d) {
				out = append(out, d)
				kept++
			}
		})
		addTime(a.Name()+"(join)", clk().Sub(start), kept)
	}

	sortDiagnostics(out)
	out = dedupDiagnostics(out)

	res := Result{Diagnostics: out}
	order := append([]Analyzer(nil), analyzers...)
	for _, a := range order {
		for _, key := range []string{a.Name(), a.Name() + "(join)"} {
			if t, ok := timings[key]; ok {
				res.Timings = append(res.Timings, *t)
			}
		}
	}
	return res
}

func isTestFile(pass *Pass, filename string) bool {
	for _, f := range pass.Files {
		if f.Path == filename {
			return f.Test
		}
	}
	return false
}

// ImportName returns the local name under which file imports path, or ""
// when the file does not import it. Dot and blank imports return "".
func ImportName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if imp.Path.Value != `"`+path+`"` {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		// Default name: the last path element.
		p := path
		for i := len(p) - 1; i >= 0; i-- {
			if p[i] == '/' {
				return p[i+1:]
			}
		}
		return p
	}
	return ""
}

// IsPkgCall reports whether call is pkgName.fn(...) for the given local
// package name, returning the selector for position reporting.
func IsPkgCall(call *ast.CallExpr, pkgName, fn string) (*ast.SelectorExpr, bool) {
	if pkgName == "" {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return nil, false
	}
	return sel, true
}

// Run executes the analyzers over a single pass and returns the
// diagnostics that survive suppression directives, sorted by position. It
// is the single-package entry point (fixture tests); ModuleAnalyzer joins
// do not run — use Program.Run for those.
func Run(pass *Pass, analyzers []Analyzer) []Diagnostic {
	sup := collectDirectives(pass)
	var out []Diagnostic
	for _, a := range analyzers {
		pass.analyzer = a.Name()
		pass.diags = pass.diags[:0]
		a.Run(pass)
		for _, d := range pass.diags {
			if !sup.allows(d) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer so
// output is deterministic across runs and worker orderings.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// dedupDiagnostics removes exact duplicates from a sorted slice — the
// test-augmented pass of a package re-reports malformed directives of
// non-test files, and suppressed/unsuppressed boundaries can otherwise
// double findings at one position.
func dedupDiagnostics(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 {
			p := ds[i-1]
			if p.Pos == d.Pos && p.Analyzer == d.Analyzer && p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		&Determinism{},
		&SeedPlumb{},
		&FloatCmp{},
		&SyncMisuse{},
		&SpanEnd{},
		&TraceCtx{},
		&SleepLoop{},
		&LockOrder{},
		&HotPathAlloc{},
		&SnapshotCompat{},
		&ErrDrop{},
	}
}

// ByName returns the subset of All whose names appear in names, preserving
// suite order, or an error naming the first unknown entry.
func ByName(names []string) ([]Analyzer, error) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name()] = true
	}
	want := map[string]bool{}
	for _, n := range names {
		if !known[n] {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		want[n] = true
	}
	var out []Analyzer
	for _, a := range All() {
		if want[a.Name()] {
			out = append(out, a)
		}
	}
	return out, nil
}
