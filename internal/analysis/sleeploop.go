package analysis

import (
	"go/ast"
	"go/types"
)

// SleepLoop flags raw time.Sleep calls inside loops in production code.
// A sleep that re-runs per iteration is pacing — a retry/backoff loop, a
// poll loop — and pacing must flow through an injected clock.Sleeper
// (internal/clock) so tests can substitute a fake that completes
// instantly and load runs stay deterministic. A one-shot sleep outside a
// loop is left alone, as are _test.go files (tests legitimately poll with
// short real sleeps) and function literals defined inside a loop (their
// body runs on the goroutine's own schedule, not per iteration).
type SleepLoop struct{}

// Name implements Analyzer.
func (*SleepLoop) Name() string { return "sleeploop" }

// Doc implements Analyzer.
func (*SleepLoop) Doc() string {
	return "flags time.Sleep inside loops: retry/backoff pacing must go through an injected clock.Sleeper"
}

// Run implements Analyzer.
func (s *SleepLoop) Run(pass *Pass) {
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		timeName := ImportName(f.AST, "time")
		if timeName == "" {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Track the ancestor stack (Inspect reports post-order exits as
			// nil) so loop membership can stop at function-literal
			// boundaries.
			var stack []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := IsPkgCall(call, timeName, "Sleep")
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj, found := pass.Info.Uses[id]; found {
						if _, isPkg := obj.(*types.PkgName); !isPkg {
							return true
						}
					}
				}
				if enclosingLoop(stack) {
					pass.Report(sel.Pos(), "time.Sleep inside a loop: inject a clock.Sleeper (internal/clock) so retry/backoff pacing is deterministic under test")
				}
				return true
			})
		}
	}
}

// enclosingLoop reports whether the innermost enclosing scope of the node
// on top of stack, up to the nearest function literal, contains a loop.
func enclosingLoop(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}
