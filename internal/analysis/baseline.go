package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A baseline is the committed ledger of accepted findings: each entry is
// one (file, analyzer, message) key with the number of occurrences being
// tolerated and an auditable reason. Diffing against the baseline lets a
// new analyzer land with legacy findings grandfathered while every *new*
// finding still fails CI — and because entries carry reasons and live in
// version control, each suppression stays reviewable and removable.

// BaselineEntry tolerates Count findings matching the key.
type BaselineEntry struct {
	// File is the finding's path, slash-separated, relative to the
	// analysis root.
	File string `json:"file"`
	// Analyzer is the reporting analyzer.
	Analyzer string `json:"analyzer"`
	// Message is the exact finding message.
	Message string `json:"message"`
	// Count is how many identical findings are tolerated.
	Count int `json:"count"`
	// Reason documents why the finding is accepted rather than fixed.
	Reason string `json:"reason,omitempty"`
}

// Baseline is the committed findings ledger.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// baselineKey normalizes a diagnostic to its baseline identity.
func baselineKey(d Diagnostic, root string) BaselineEntry {
	return BaselineEntry{File: RelPath(root, d.Pos.Filename), Analyzer: d.Analyzer, Message: d.Message}
}

// Filter splits diagnostics into fresh findings (beyond the baselined
// counts) and reports the entries that matched nothing — stale entries
// that can be deleted.
func (b *Baseline) Filter(diags []Diagnostic, root string) (fresh []Diagnostic, stale []BaselineEntry) {
	remaining := map[BaselineEntry]int{}
	used := map[BaselineEntry]bool{}
	for _, e := range b.Entries {
		key := BaselineEntry{File: e.File, Analyzer: e.Analyzer, Message: e.Message}
		remaining[key] += e.Count
	}
	for _, d := range diags {
		key := baselineKey(d, root)
		if remaining[key] > 0 {
			remaining[key]--
			used[key] = true
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		key := BaselineEntry{File: e.File, Analyzer: e.Analyzer, Message: e.Message}
		if !used[key] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

// NewBaseline builds a baseline accepting exactly the given diagnostics.
func NewBaseline(diags []Diagnostic, root, reason string) *Baseline {
	counts := map[BaselineEntry]int{}
	for _, d := range diags {
		counts[baselineKey(d, root)]++
	}
	b := &Baseline{Version: 1, Entries: []BaselineEntry{}}
	for key, n := range counts {
		key.Count = n
		key.Reason = reason
		b.Entries = append(b.Entries, key)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Encode writes the baseline as indented JSON.
func (b *Baseline) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// RelPath renders filename relative to root with forward slashes, falling
// back to the input when it is not under root.
func RelPath(root, filename string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	abs, err1 := filepath.Abs(root)
	file, err2 := filepath.Abs(filename)
	if err1 != nil || err2 != nil {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(abs, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
