package analysis

import (
	"go/ast"
	"strings"
)

// Suppression directives let a reviewed, justified exception coexist with a
// mechanically enforced invariant. Three scopes are supported:
//
//	//homlint:allow <analyzer> -- <reason>      line scope
//	//homlint:func-allow <analyzer> -- <reason> function scope (in the doc comment)
//	//homlint:file-allow <analyzer> -- <reason> file scope (anywhere in the file)
//
// A line-scope directive suppresses findings of <analyzer> on its own line
// or the line immediately below it (so it can trail the offending code or
// sit on its own line above). <analyzer> may be "all". The "-- reason" tail
// is required: an unexplained suppression is itself reported by the runner
// via CheckDirectives.
//
// One marker directive exists besides the allow family:
//
//	//homlint:hotpath                           function doc comment
//
// It takes no arguments and declares the function a hot-path root for the
// hotpathalloc analyzer: allocation sources in the function, or in anything
// reachable from it through the call graph, become findings.

const directivePrefix = "//homlint:"

// suppressions indexes directives for the allows test.
type suppressions struct {
	// fileAllow maps filename -> analyzer set suppressed for the whole file.
	fileAllow map[string]map[string]bool
	// lineAllow maps filename -> line -> analyzer set. A directive at line L
	// registers L and L+1.
	lineAllow map[string]map[int]map[string]bool
	// malformed collects directives that did not parse; surfaced by
	// CheckDirectives so typos fail loudly instead of silently not
	// suppressing (or worse, appearing to pass because the code was fixed).
	malformed []Diagnostic
}

func (s *suppressions) allows(d Diagnostic) bool {
	if set := s.fileAllow[d.Pos.Filename]; set != nil && (set["all"] || set[d.Analyzer]) {
		return true
	}
	if lines := s.lineAllow[d.Pos.Filename]; lines != nil {
		if set := lines[d.Pos.Line]; set != nil && (set["all"] || set[d.Analyzer]) {
			return true
		}
	}
	return false
}

// parseDirective parses one comment's text, returning ok=false when the
// comment is not a homlint directive at all, and malformed=true when it is
// one but does not follow the grammar.
func parseDirective(text string) (kind, analyzer, reason string, ok, malformed bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", "", false, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	body := rest
	if i := strings.Index(rest, "--"); i >= 0 {
		body = strings.TrimSpace(rest[:i])
		reason = strings.TrimSpace(rest[i+2:])
	} else {
		body = strings.TrimSpace(rest)
	}
	fields := strings.Fields(body)
	if len(fields) == 1 && fields[0] == "hotpath" {
		// Marker directive: no analyzer argument, reason optional.
		return "hotpath", "", reason, true, false
	}
	if len(fields) != 2 {
		return "", "", "", true, true
	}
	kind, analyzer = fields[0], fields[1]
	switch kind {
	case "allow", "func-allow", "file-allow":
	default:
		return "", "", "", true, true
	}
	if reason == "" {
		return "", "", "", true, true
	}
	return kind, analyzer, reason, true, false
}

// HasHotPathDirective reports whether the comment group carries the
// //homlint:hotpath marker.
func HasHotPathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if kind, _, _, ok, malformed := parseDirective(c.Text); ok && !malformed && kind == "hotpath" {
			return true
		}
	}
	return false
}

// collectDirectives gathers every homlint directive in the pass.
func collectDirectives(pass *Pass) *suppressions {
	s := &suppressions{
		fileAllow: map[string]map[string]bool{},
		lineAllow: map[string]map[int]map[string]bool{},
	}
	addLine := func(file string, line int, analyzer string) {
		if s.lineAllow[file] == nil {
			s.lineAllow[file] = map[int]map[string]bool{}
		}
		for _, l := range [2]int{line, line + 1} {
			if s.lineAllow[file][l] == nil {
				s.lineAllow[file][l] = map[string]bool{}
			}
			s.lineAllow[file][l][analyzer] = true
		}
	}
	addRange := func(file string, from, to int, analyzer string) {
		if s.lineAllow[file] == nil {
			s.lineAllow[file] = map[int]map[string]bool{}
		}
		for l := from; l <= to; l++ {
			if s.lineAllow[file][l] == nil {
				s.lineAllow[file][l] = map[string]bool{}
			}
			s.lineAllow[file][l][analyzer] = true
		}
	}

	for _, f := range pass.Files {
		// Function-scope directives live in doc comments; map them to the
		// declaration's full line range.
		funcRange := map[*ast.CommentGroup][2]int{}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			from := pass.Fset.Position(fd.Pos()).Line
			to := pass.Fset.Position(fd.End()).Line
			funcRange[fd.Doc] = [2]int{from, to}
		}
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				kind, analyzer, _, ok, malformed := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if malformed {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "directives",
						Message:  "malformed homlint directive; want //homlint:(allow|func-allow|file-allow) <analyzer> -- <reason> or //homlint:hotpath",
					})
					continue
				}
				switch kind {
				case "file-allow":
					if s.fileAllow[pos.Filename] == nil {
						s.fileAllow[pos.Filename] = map[string]bool{}
					}
					s.fileAllow[pos.Filename][analyzer] = true
				case "func-allow":
					if r, ok := funcRange[cg]; ok {
						addRange(pos.Filename, r[0], r[1], analyzer)
					} else {
						// Not a function doc comment: degrade to line scope.
						addLine(pos.Filename, pos.Line, analyzer)
					}
				case "allow":
					addLine(pos.Filename, pos.Line, analyzer)
				}
			}
		}
	}
	return s
}

// CheckDirectives returns a diagnostic for every malformed homlint
// directive in the pass, so suppressions that would silently fail to apply
// are reported as findings in their own right.
func CheckDirectives(pass *Pass) []Diagnostic {
	return collectDirectives(pass).malformed
}
