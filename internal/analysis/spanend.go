package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// SpanEnd flags obs tracer spans that are started but may never be ended
// in the starting function. An unended span renders with a bogus
// duration-so-far in Snapshot and never closes in the Chrome trace export,
// so the invariant is: whoever calls StartSpan either ends the span in the
// same function (defer End, or a plain End that no return statement can
// bypass) or visibly hands it off (returns it, stores it, passes it on).
//
// The check is purely syntactic — intra-module type information is
// best-effort in this framework — so it keys on the method name StartSpan
// in files that import highorder/internal/obs (or in package obs itself).
// Test files are exempt: tests deliberately leave spans open to exercise
// the tracer's in-flight snapshot behavior.
type SpanEnd struct{}

// Name implements Analyzer.
func (*SpanEnd) Name() string { return "spanend" }

// Doc implements Analyzer.
func (*SpanEnd) Doc() string {
	return "flags obs spans started without a same-function End (defer or unconditional)"
}

// Run implements Analyzer.
func (se *SpanEnd) Run(pass *Pass) {
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		if ImportName(f.AST, "highorder/internal/obs") == "" && f.AST.Name.Name != "obs" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body != nil {
					se.checkScope(pass, v.Body)
				}
			case *ast.FuncLit:
				se.checkScope(pass, v.Body)
			}
			return true
		})
	}
}

// spanStart is one StartSpan call bound to a variable in the scope.
type spanStart struct {
	name string
	pos  token.Pos
}

// spanEnd is one <var>.End() call in the scope.
type spanEnd struct {
	pos token.Pos
	// deferred is true for `defer sp.End()` and for End calls inside any
	// nested function literal (conservatively: a closure usually outlives
	// straight-line control flow, e.g. `defer func() { sp.End() }()`).
	deferred bool
}

// checkScope analyzes one function body. Nested function literals are
// their own scopes for starts (Run visits them separately); they are only
// scanned here when attributing End calls to this scope's variables.
func (se *SpanEnd) checkScope(pass *Pass, body *ast.BlockStmt) {
	// Pass 1 (own statements only): classify every StartSpan call site.
	started := map[ast.Node]bool{} // StartSpan CallExprs seen
	claimed := map[ast.Node]bool{} // ... that are assigned, returned, or chained-ended
	var startedList []ast.Node     // source order, for deterministic reports
	var starts []spanStart
	inOwn(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && isStartSpan(call) {
			started[call] = true
			startedList = append(startedList, call)
		}
	})
	inOwn(body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				if !started[rhs] || i >= len(v.Lhs) {
					continue
				}
				claimed[rhs] = true
				switch lhs := v.Lhs[i].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						pass.Report(rhs.Pos(), "span assigned to _ is never ended: bind it and End it, or do not start it")
						continue
					}
					starts = append(starts, spanStart{name: lhs.Name, pos: rhs.Pos()})
				default:
					// Stored into a field or element: ownership visibly
					// handed off; out of scope for a syntactic check.
				}
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if started[res] {
					claimed[res] = true // caller owns the span
				}
			}
		case *ast.SelectorExpr:
			// tr.StartSpan("x").End() — ended (or leaked via SetArg etc.)
			// directly on the call result.
			if started[v.X] {
				claimed[v.X] = true
				if v.Sel.Name != "End" {
					pass.Report(v.X.Pos(), "span result used without being bound or ended: call End or assign the span")
				}
			}
		}
	})
	for _, call := range startedList {
		if !claimed[call] {
			pass.Report(call.Pos(), "span started and discarded: its End can never be called")
		}
	}
	if len(starts) == 0 {
		return
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].pos < starts[j].pos })

	// Pass 2: collect per-variable End calls, escapes, and return positions.
	ends := map[string][]spanEnd{}
	escaped := map[string]bool{}
	names := map[string]bool{}
	for _, s := range starts {
		names[s.name] = true
	}
	var returns []token.Pos
	var deferDepth, litDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			deferDepth++
			ast.Inspect(v.Call, walk)
			deferDepth--
			return false
		case *ast.FuncLit:
			litDepth++
			ast.Inspect(v.Body, walk)
			litDepth--
			return false
		case *ast.ReturnStmt:
			if litDepth == 0 {
				returns = append(returns, v.Pos())
			}
			for _, res := range v.Results {
				if id, ok := res.(*ast.Ident); ok && names[id.Name] {
					escaped[id.Name] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && names[id.Name] {
					if sel.Sel.Name == "End" {
						ends[id.Name] = append(ends[id.Name], spanEnd{pos: v.Pos(), deferred: deferDepth > 0 || litDepth > 0})
					}
					// Other method calls on the span (StartSpan, SetArg)
					// do not transfer ownership.
				}
			}
			// A span passed as a call argument escapes to the callee.
			for _, arg := range v.Args {
				if id, ok := arg.(*ast.Ident); ok && names[id.Name] {
					escaped[id.Name] = true
				}
			}
		case *ast.CompositeLit:
			// Stored in a struct/slice literal (e.g. Options{Span: sp}).
			for _, el := range v.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := e.(*ast.Ident); ok && names[id.Name] {
					escaped[id.Name] = true
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	// Pass 3: judge each start within its window (up to the next textual
	// rebinding of the same name).
	for i, s := range starts {
		if escaped[s.name] {
			continue
		}
		windowEnd := token.Pos(1 << 40)
		for j := i + 1; j < len(starts); j++ {
			if starts[j].name == s.name {
				windowEnd = starts[j].pos
				break
			}
		}
		var plain []token.Pos
		ended := false
		for _, e := range ends[s.name] {
			if e.pos <= s.pos || e.pos >= windowEnd {
				continue
			}
			if e.deferred {
				ended = true
				break
			}
			plain = append(plain, e.pos)
		}
		if ended {
			continue
		}
		if len(plain) == 0 {
			pass.Report(s.pos, "span %q is never ended in this function: add defer %s.End()", s.name, s.name)
			continue
		}
		sort.Slice(plain, func(a, b int) bool { return plain[a] < plain[b] })
		for _, r := range returns {
			if r > s.pos && r < plain[0] {
				pass.Report(s.pos, "span %q can leak past a return before its End: use defer %s.End() or End before the return", s.name, s.name)
				break
			}
		}
	}
}

// inOwn walks the statements of body, skipping nested function literals —
// those are separate scopes with their own checkScope visit.
func inOwn(body *ast.BlockStmt, visit func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isStartSpan reports whether call is <expr>.StartSpan(...).
func isStartSpan(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "StartSpan"
}
