package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotPathAlloc flags allocation sources in functions marked with a
// //homlint:hotpath doc-comment directive, and in everything reachable
// from them through the call graph. It backs the ≥1M records/s zero-alloc
// serve goal: AllocsPerRun ceilings catch regressions on the benchmarked
// entry points, this analyzer catches them at the source line, in every
// function the hot path can reach.
//
// Reported allocation classes:
//
//   - calls into package fmt (Sprintf and friends always allocate)
//   - growing append (x = append(x, ...)), which may reallocate the
//     backing array
//   - concrete non-pointer values boxed into interface-typed parameters
//   - function literals that are not immediately invoked (closure
//     allocation; the literal's own body is analyzed as its own node)
//
// The per-package phase records each function's allocation sites and the
// hotpath roots as facts; the join walks the call graph (static, flow,
// interface, and closure edges — conservative on purpose) and reports the
// sites of every reachable function, attributed to the nearest root in
// deterministic order.
type HotPathAlloc struct{}

// Name implements Analyzer.
func (*HotPathAlloc) Name() string { return "hotpathalloc" }

// Doc implements Analyzer.
func (*HotPathAlloc) Doc() string {
	return "flag allocation sources in //homlint:hotpath functions and everything reachable from them"
}

// hotRootFact marks a function as a declared hot-path root.
type hotRootFact struct{ pos token.Pos }

// AFact implements Fact.
func (*hotRootFact) AFact() {}

// allocSite is one local allocation source.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocFact carries one function's allocation sites.
type allocFact struct{ sites []allocSite }

// AFact implements Fact.
func (*allocFact) AFact() {}

// Run exports hotpath roots and per-function allocation sites as facts.
func (a *HotPathAlloc) Run(pass *Pass) {
	if !pass.Canonical {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if HasHotPathDirective(fd.Doc) {
				pass.Prog.Facts.Export(a.Name(), obj, &hotRootFact{pos: fd.Pos()})
			}
			if sites := collectAllocSites(pass, fd.Body); len(sites) > 0 {
				pass.Prog.Facts.Export(a.Name(), obj, &allocFact{sites: sites})
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					if sites := collectAllocSites(pass, lit.Body); len(sites) > 0 {
						pass.Prog.Facts.Export(a.Name(), lit, &allocFact{sites: sites})
					}
				}
				return true
			})
		}
	}
}

// collectAllocSites scans one body for allocation sources, treating
// nested function literals as opaque (they carry their own facts) except
// for the closure-allocation site they induce in this body.
func collectAllocSites(pass *Pass, body *ast.BlockStmt) []allocSite {
	var sites []allocSite
	// Immediately invoked literals execute inline and allocate nothing for
	// the closure itself when they do not escape.
	invoked := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if !invoked[v] {
				sites = append(sites, allocSite{pos: v.Pos(), what: "closure allocation (func literal escapes)"})
			}
			return false // its body is its own node
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				if i >= len(v.Lhs) {
					break
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isGrowingAppend(pass, v.Lhs[i], call) {
					sites = append(sites, allocSite{pos: call.Pos(), what: "growing append may reallocate"})
				}
			}
			return true
		case *ast.CallExpr:
			if name, ok := fmtCallName(pass, v); ok {
				sites = append(sites, allocSite{pos: v.Pos(), what: fmt.Sprintf("call to fmt.%s allocates", name)})
				return true // args feed fmt anyway; no extra boxing reports
			}
			sites = append(sites, boxingSites(pass, v)...)
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].pos != sites[j].pos {
			return sites[i].pos < sites[j].pos
		}
		return sites[i].what < sites[j].what
	})
	return sites
}

// isGrowingAppend reports whether call is append whose first argument is
// the assignment target itself — the x = append(x, ...) growth pattern.
func isGrowingAppend(pass *Pass, lhs ast.Expr, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return types.ExprString(ast.Unparen(call.Args[0])) == types.ExprString(ast.Unparen(lhs))
}

// fmtCallName matches calls to package fmt and returns the function name.
func fmtCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return fn.Name(), true
	}
	return "", false
}

// boxingSites reports arguments whose concrete non-pointer value is
// converted to an interface-typed parameter — each such conversion can
// heap-allocate the boxed copy.
func boxingSites(pass *Pass, call *ast.CallExpr) []allocSite {
	sig, ok := funcSig(pass, call)
	if !ok || call.Ellipsis.IsValid() {
		return nil
	}
	var sites []allocSite
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Signature, *types.Map, *types.Chan, *types.Slice:
			// Pointer-shaped: the interface data word holds the pointer; no
			// extra allocation for the value itself (slices box a header, but
			// that is three words of the same cost class — still flag? No:
			// keep the check focused on value copies).
			continue
		}
		if bt, ok := at.Underlying().(*types.Basic); ok && bt.Kind() == types.UntypedNil {
			continue
		}
		sites = append(sites, allocSite{
			pos:  arg.Pos(),
			what: fmt.Sprintf("%s value boxed into interface argument", types.TypeString(at, types.RelativeTo(pass.Pkg))),
		})
	}
	return sites
}

// funcSig resolves the callee signature, rejecting conversions and
// builtins.
func funcSig(pass *Pass, call *ast.CallExpr) (*types.Signature, bool) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return nil, false
		}
	}
	if pass.Info != nil {
		if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
			return nil, false // conversion
		}
	}
	t := pass.TypeOf(fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// Join walks the call graph from the hotpath roots and reports every
// reachable allocation site.
func (a *HotPathAlloc) Join(prog *Program, report func(Diagnostic)) {
	g := prog.Graph()

	factKeyOf := func(n *FuncNode) any {
		switch {
		case n.Obj != nil:
			return n.Obj
		case n.Lit != nil:
			return n.Lit
		}
		return nil
	}
	isRoot := func(n *FuncNode) bool {
		key := factKeyOf(n)
		if key == nil {
			return false
		}
		for _, f := range prog.Facts.Import(a.Name(), key) {
			if _, ok := f.(*hotRootFact); ok {
				return true
			}
		}
		return false
	}

	var roots []*FuncNode
	for _, n := range g.Nodes {
		if isRoot(n) {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name < roots[j].Name })

	// Attribute each reachable node to the first root (in name order) that
	// reaches it, so messages are stable and actionable.
	rootOf := map[*FuncNode]*FuncNode{}
	for _, r := range roots {
		for n := range g.Reachable([]*FuncNode{r}, nil) {
			if _, ok := rootOf[n]; !ok {
				rootOf[n] = r
			}
		}
	}
	// Map iteration order does not matter: diagnostics are position-sorted
	// by the runner, and attribution above is deterministic.
	for n, r := range rootOf {
		key := factKeyOf(n)
		if key == nil {
			continue
		}
		for _, f := range prog.Facts.Import(a.Name(), key) {
			af, ok := f.(*allocFact)
			if !ok {
				continue
			}
			for _, site := range af.sites {
				msg := "hot path: " + site.what
				if n != r {
					msg = fmt.Sprintf("hot path (%s, reachable from %s): %s", n.Name, r.Name, site.what)
				}
				report(Diagnostic{Pos: prog.Fset.Position(site.pos), Message: msg})
			}
		}
	}
}
