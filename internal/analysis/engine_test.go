package analysis

import (
	"path/filepath"
	"reflect"
	"testing"
)

// loadProgram loads a module-style fixture tree (recursively, with the
// call graph and fact store) rooted at testdata/name.
func loadProgram(t *testing.T, name string) *Program {
	t.Helper()
	prog, err := NewLoader().LoadModule(filepath.Join("testdata", filepath.FromSlash(name)))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// progWants parses want annotations across every canonical pass.
func progWants(t *testing.T, prog *Program) []want {
	t.Helper()
	var out []want
	for _, pass := range prog.Canon {
		out = append(out, parseWants(t, pass)...)
	}
	return out
}

// TestModuleAnalyzersOnFixtures runs each flow-aware analyzer over its
// fixture tree through the full parallel engine (per-package Run, fact
// export, module Join) and requires an exact match against the want
// annotations. The snapshotcompat/clean tree asserts silence against a
// committed, matching fingerprint.
func TestModuleAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer string
		wantAny  bool
	}{
		{"lockorder", "lockorder", true},
		{"hotpathalloc", "hotpathalloc", true},
		{"errdrop", "errdrop", true},
		{"snapshotcompat/clean", "snapshotcompat", false},
		{"snapshotcompat/unbumped", "snapshotcompat", true},
		{"snapshotcompat/stale", "snapshotcompat", true},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			prog := loadProgram(t, tc.fixture)
			analyzers, err := ByName([]string{tc.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			res := prog.Run(analyzers, RunOptions{})
			wants := progWants(t, prog)
			if tc.wantAny && len(wants) == 0 {
				t.Fatalf("fixture %s has no want annotations", tc.fixture)
			}
			matchWants(t, res.Diagnostics, wants)
		})
	}
}

// TestSnapshotFixCarriesRegeneration checks that the stale fixture's
// finding ships a whole-file fix regenerating the fingerprint.
func TestSnapshotFixCarriesRegeneration(t *testing.T) {
	prog := loadProgram(t, "snapshotcompat/stale")
	analyzers, _ := ByName([]string{"snapshotcompat"})
	res := prog.Run(analyzers, RunOptions{})
	if len(res.Diagnostics) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(res.Diagnostics), res.Diagnostics)
	}
	fix := res.Diagnostics[0].Fix
	if fix == nil || fix.End != -1 || fix.NewText == "" {
		t.Fatalf("stale fingerprint finding should carry a whole-file fix, got %+v", fix)
	}
	if recordedVersion(fix.NewText) != "2" {
		t.Errorf("regenerated fingerprint should record model-version 2, got %q", recordedVersion(fix.NewText))
	}
}

// TestErrDropFix checks the errdrop fix inserts arity-matched blanks.
func TestErrDropFix(t *testing.T) {
	prog := loadProgram(t, "errdrop")
	analyzers, _ := ByName([]string{"errdrop"})
	res := prog.Run(analyzers, RunOptions{})
	fixes := map[string]bool{}
	for _, d := range res.Diagnostics {
		if d.Fix != nil {
			fixes[d.Fix.NewText] = true
		}
	}
	if !fixes["_ = "] {
		t.Error("missing single-result `_ = ` fix")
	}
	if !fixes["_, _ = "] {
		t.Error("missing two-result `_, _ = ` fix")
	}
}

// TestWorkerCountIndependence runs the whole suite over every fixture
// tree at different worker counts and requires identical output — the
// determinism contract behind parallel package analysis.
func TestWorkerCountIndependence(t *testing.T) {
	for _, fixture := range []string{"lockorder", "hotpathalloc", "errdrop"} {
		runAt := func(workers int) []Diagnostic {
			prog := loadProgram(t, fixture)
			return prog.Run(All(), RunOptions{Workers: workers}).Diagnostics
		}
		serial := runAt(1)
		for _, w := range []int{2, 8} {
			if got := runAt(w); !reflect.DeepEqual(serial, got) {
				t.Errorf("%s: diagnostics differ between 1 and %d workers:\n%v\nvs\n%v", fixture, w, serial, got)
			}
		}
	}
}

// TestCallGraphEdges sanity-checks the graph builder on the lockorder
// fixture: a static edge, a flow edge through a package-level func var,
// and closure nodes.
func TestCallGraphEdges(t *testing.T) {
	prog := loadProgram(t, "lockorder")
	g := prog.Graph()

	find := func(name string) *FuncNode {
		t.Helper()
		for _, n := range g.Nodes {
			if n.Name == name {
				return n
			}
		}
		t.Fatalf("no node %q in call graph", name)
		return nil
	}

	reacquire := find("lockorder.reacquire")
	var static bool
	for _, c := range reacquire.Calls {
		if c.Callee.Name == "lockorder.lockR" && c.Kind == EdgeStatic {
			static = true
		}
	}
	if !static {
		t.Error("missing static edge reacquire -> lockR")
	}

	viaHook := find("lockorder.dViaHook")
	var flow bool
	for _, c := range viaHook.Calls {
		if c.Callee.Name == "lockorder.lockC" && c.Kind == EdgeFlow {
			flow = true
		}
	}
	if !flow {
		t.Error("missing flow edge dViaHook -> lockC through the hook func var")
	}

	spawned := find("lockorder.spawned")
	var closure bool
	for _, c := range spawned.Calls {
		if c.Kind == EdgeClosure {
			closure = true
		}
	}
	if !closure {
		t.Error("missing closure edge from spawned to its goroutine literal")
	}
}
