package analysis

import (
	"go/ast"
)

// SeedPlumb checks that random sources are constructed from *plumbed*
// seeds: a seed must arrive through a parameter, receiver field, struct
// option, constant, or another source's output (rng.Source.Split /
// Int63), never from ambient process state. The classic offenders —
// rand.NewSource(time.Now().UnixNano()), seeds from os.Getpid — reseed
// differently on every run and silently destroy the paper's record-for-
// record reproducibility contract, so they are flagged at the
// construction site.
type SeedPlumb struct{}

// Name implements Analyzer.
func (*SeedPlumb) Name() string { return "seedplumb" }

// Doc implements Analyzer.
func (*SeedPlumb) Doc() string {
	return "flags rng/rand source construction from ambient (time, pid, global-rand) seeds"
}

// seedConstructors maps import path -> function names whose first argument
// is a seed expression to vet.
var seedConstructors = map[string][]string{
	"math/rand":              {"NewSource", "Seed"},
	"highorder/internal/rng": {"New"},
}

// Run implements Analyzer.
func (*SeedPlumb) Run(pass *Pass) {
	for _, f := range pass.Files {
		names := map[string][]string{}
		for path, fns := range seedConstructors {
			if local := ImportName(f.AST, path); local != "" {
				names[local] = fns
			}
		}
		if len(names) == 0 {
			continue
		}
		timeName := ImportName(f.AST, "time")
		osName := ImportName(f.AST, "os")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			fns, ok := names[pkg.Name]
			if !ok {
				return true
			}
			match := false
			for _, fn := range fns {
				if sel.Sel.Name == fn {
					match = true
				}
			}
			if !match {
				return true
			}
			if bad, what := ambientSeed(call.Args[0], timeName, osName); bad {
				pass.Report(call.Args[0].Pos(), "%s.%s seeded from %s: plumb the seed from configuration so runs are reproducible", pkg.Name, sel.Sel.Name, what)
			}
			return true
		})
	}
}

// ambientSeed reports whether the seed expression draws on ambient process
// state, and names the offending source.
func ambientSeed(seed ast.Expr, timeName, osName string) (bool, string) {
	bad := false
	what := ""
	ast.Inspect(seed, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch {
		case timeName != "" && id.Name == timeName && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since"):
			bad, what = true, "time."+sel.Sel.Name
		case osName != "" && id.Name == osName && (sel.Sel.Name == "Getpid" || sel.Sel.Name == "Getppid"):
			bad, what = true, "os."+sel.Sel.Name
		}
		return true
	})
	return bad, what
}
