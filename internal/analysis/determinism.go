package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repository's seed-reproducibility contract
// (DESIGN.md, paper §II): every experiment must be bit-for-bit identical
// given a seed. Three classes of silent nondeterminism are flagged:
//
//  1. Calls to math/rand package-level functions that draw from the global
//     source (rand.Intn, rand.Float64, rand.Shuffle, ...). Constructors
//     that only build explicit sources (rand.New, rand.NewSource,
//     rand.NewZipf) are allowed — all randomness must flow through an
//     injected *rng.Source.
//  2. Calls to time.Now (and time.Since, which reads the wall clock).
//     Timing code must draw from an injectable clock (internal/clock) so
//     measured runs are mockable; the clock package itself carries the one
//     sanctioned //homlint:allow.
//  3. Ranging over a map while appending to a slice declared outside the
//     loop, without a subsequent sort in the same function. Map iteration
//     order is randomized by the runtime, so such accumulation leaks
//     nondeterministic order into results or output.
//  4. Ranging over a map while pushing into a heap or queue (any call to a
//     function or method named push/Push inside the loop body). Heap pop
//     order is only independent of push order when the comparator is a
//     total order, which the analyzer cannot prove; iterate an ordered
//     list instead, or carry a //homlint:allow with the totality argument.
type Determinism struct{}

// Name implements Analyzer.
func (*Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (*Determinism) Doc() string {
	return "flags global math/rand use, wall-clock reads, unsorted map-iteration accumulation, and heap pushes from map iteration"
}

// globalRandAllowed lists the math/rand package-level identifiers that do
// not touch the global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// Types, usable in composite/selector position.
	"Rand":   true,
	"Source": true,
	"Zipf":   true,
}

// Run implements Analyzer.
func (d *Determinism) Run(pass *Pass) {
	for _, f := range pass.Files {
		randName := ImportName(f.AST, "math/rand")
		randV2 := ImportName(f.AST, "math/rand/v2")
		timeName := ImportName(f.AST, "time")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			// Only package selectors, not method calls on values that
			// happen to share the import name.
			if obj, ok2 := pass.Info.Uses[id]; ok2 {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			switch {
			case (id.Name == randName && randName != "") || (id.Name == randV2 && randV2 != ""):
				if !globalRandAllowed[sel.Sel.Name] {
					pass.Report(sel.Pos(), "call to global math/rand.%s: draw from an injected *rng.Source so runs are seed-reproducible", sel.Sel.Name)
				}
			case id.Name == timeName && timeName != "":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					pass.Report(sel.Pos(), "call to time.%s: inject a clock.Clock (internal/clock) so timing is mockable and deterministic in tests", sel.Sel.Name)
				}
			}
			return true
		})
		d.checkMapOrder(pass, f)
	}
}

// checkMapOrder flags `for k := range m { out = append(out, ...) }` where m
// is a map and no sort call follows in the enclosing function, and any
// push/Push call inside a map-range body (heap fills whose pop order the
// analyzer cannot prove independent of push order). Channel sends stay out
// of scope: order-insensitive sinks are common and fine.
func (d *Determinism) checkMapOrder(pass *Pass, f *File) {
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var ranges []*ast.RangeStmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok && d.isMapExpr(pass, fd, rs.X) {
				ranges = append(ranges, rs)
			}
			return true
		})
		if len(ranges) == 0 {
			continue
		}
		sorted := containsSortCall(fd.Body)
		for _, rs := range ranges {
			if target := appendTargetOutsideLoop(rs); target != "" && !sorted {
				pass.Report(rs.Pos(), "range over map accumulates into %q without a subsequent sort: map order is randomized, so results are nondeterministic", target)
			}
			if name := pushCallInLoop(rs); name != "" {
				pass.Report(rs.Pos(), "range over map pushes into a heap via %s: map order is randomized, and pop order is only independent of push order for a provably total comparator — iterate an ordered list instead", name)
			}
		}
	}
}

// isMapExpr reports whether x is map-typed, using type info when available
// and a local-declaration scan otherwise.
func (d *Determinism) isMapExpr(pass *Pass, fd *ast.FuncDecl, x ast.Expr) bool {
	if t := pass.TypeOf(x); t != nil {
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	}
	// Syntax fallback: the ranged expression is an identifier assigned a
	// map literal or make(map[...]...) somewhere in this function.
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			l, ok := lhs.(*ast.Ident)
			if !ok || l.Name != id.Name || i >= len(as.Rhs) {
				continue
			}
			if isMapValueExpr(as.Rhs[i]) {
				found = true
			}
		}
		return true
	})
	return found
}

func isMapValueExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, ok := v.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// appendTargetOutsideLoop returns the name of a variable that the range
// body appends into and that is declared outside the range statement, or
// "" when the loop does not accumulate that way.
func appendTargetOutsideLoop(rs *ast.RangeStmt) string {
	declared := map[string]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok.String() == ":=" {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					declared[id.Name] = true
				}
			}
		}
		return true
	})
	target := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && !declared[id.Name] {
				target = id.Name
			}
		}
		return true
	})
	return target
}

// pushCallInLoop returns the rendered name of a push/Push call inside the
// range body (heap.Push, q.push, ...), or "" when there is none.
func pushCallInLoop(rs *ast.RangeStmt) string {
	name := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "push" || fn.Name == "Push" {
				name = fn.Name
			}
		case *ast.SelectorExpr:
			if fn.Sel.Name == "push" || fn.Sel.Name == "Push" {
				name = fn.Sel.Name
				if id, ok := fn.X.(*ast.Ident); ok {
					name = id.Name + "." + name
				}
			}
		}
		return true
	})
	return name
}

// containsSortCall reports whether the body calls anything that plausibly
// restores a deterministic order: a function whose name contains "sort" or
// "order" (sort.Slice, slices.SortFunc, orderByFirstMember, ...).
func containsSortCall(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			name = fn.Name
		case *ast.SelectorExpr:
			name = fn.Sel.Name
			if id, ok := fn.X.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
		lower := strings.ToLower(name)
		if strings.Contains(lower, "sort") || strings.Contains(lower, "order") {
			found = true
		}
		return true
	})
	return found
}
