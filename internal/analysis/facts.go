package analysis

import "sync"

// Fact is a unit of analyzer knowledge attached to a program object —
// typically a *types.Func or *ast.FuncLit — during the parallel
// per-package phase and consumed by a ModuleAnalyzer's join. Facts are how
// findings propagate across function and package boundaries: a package
// pass records what it can see locally (this function acquires that lock,
// this function allocates here, this type is gob-encoded), and the join
// stitches the local facts together over the call graph.
type Fact interface {
	// AFact brands the type; it has no behavior.
	AFact()
}

// FactStore is the program-wide fact table. It is safe for concurrent
// export from parallel package passes; joins read it after the parallel
// phase has completed.
type FactStore struct {
	mu sync.Mutex
	m  map[factKey][]Fact
}

// factKey scopes facts by owning analyzer so two analyzers can attach
// facts to the same object without colliding.
type factKey struct {
	analyzer string
	obj      any
}

func newFactStore() *FactStore {
	return &FactStore{m: map[factKey][]Fact{}}
}

// Export attaches a fact to obj under the analyzer's namespace.
func (s *FactStore) Export(analyzer string, obj any, f Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := factKey{analyzer, obj}
	s.m[k] = append(s.m[k], f)
}

// Import returns every fact attached to obj under the analyzer's
// namespace, in export order (per-object export order is deterministic:
// one pass owns each object).
func (s *FactStore) Import(analyzer string, obj any) []Fact {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[factKey{analyzer, obj}]
}
