package highorder

import (
	"testing"
)

func TestBaselinesThroughFacade(t *testing.T) {
	gen := NewStagger(StaggerConfig{Seed: 31})
	schema := gen.Schema()
	hist := TakeDataset(gen, 3000)
	test := TakeDataset(gen, 3000)

	algos := []Online{
		NewRePro(ReProOptions{Schema: schema}),
		NewWCE(WCEOptions{Schema: schema}),
		NewDWM(DWMOptions{Schema: schema}),
	}
	for _, a := range algos {
		for _, r := range hist.Records {
			a.Learn(r)
		}
		res := Evaluate(a, test)
		if res.ErrorRate() > 0.30 {
			t.Errorf("%s error = %v on Stagger, implausibly high", a.Name(), res.ErrorRate())
		}
	}
}

func TestDetectorsThroughFacade(t *testing.T) {
	for _, d := range []DriftDetector{
		NewWindowDetector(20, 0.2),
		NewDDMDetector(),
		NewPageHinkleyDetector(),
	} {
		// Clean run, then a burst of errors: every detector must fire.
		for i := 0; i < 500; i++ {
			if d.Observe(true) {
				t.Fatalf("%s fired on a perfect stream", d.Name())
			}
		}
		fired := false
		for i := 0; i < 500 && !fired; i++ {
			fired = d.Observe(false)
		}
		if !fired {
			t.Errorf("%s never fired on an all-error burst", d.Name())
		}
	}
}

func TestHMMUtilitiesThroughFacade(t *testing.T) {
	gen := NewStagger(StaggerConfig{Seed: 33})
	hist := TakeDataset(gen, 6000)
	opts := DefaultBuildOptions()
	opts.Seed = 33
	model, err := Build(hist, opts)
	if err != nil {
		t.Fatal(err)
	}
	test := TakeDataset(gen, 1000)
	path := DecodeConcepts(model, test.Records)
	if len(path) != 1000 {
		t.Fatalf("decoded path length %d", len(path))
	}
	for _, c := range path {
		if c < 0 || c >= model.NumConcepts() {
			t.Fatalf("decoded concept %d out of range", c)
		}
	}
	gamma := SmoothConcepts(model, test.Records)
	if len(gamma) != 1000 || len(gamma[0]) != model.NumConcepts() {
		t.Fatalf("smoothed posterior shape %dx%d", len(gamma), len(gamma[0]))
	}
}

func TestCustomDetectorInReProFacade(t *testing.T) {
	gen := NewStagger(StaggerConfig{Seed: 35})
	r := NewRePro(ReProOptions{Schema: gen.Schema(), Detector: NewDDMDetector()})
	hist := TakeDataset(gen, 2000)
	for _, rec := range hist.Records {
		r.Learn(rec)
	}
	// Just exercising the wiring: it must classify without panicking.
	test := TakeDataset(gen, 200)
	res := Evaluate(r, test)
	if res.Records != 200 {
		t.Fatal("evaluation incomplete")
	}
}
