package highorder

// Integration tests: each benchmark stream through the full pipeline —
// generate, build offline, classify online — asserting the paper's
// qualitative claims end-to-end at small scale.

import (
	"testing"
)

// pipelines configures one miniature end-to-end run per stream.
func pipelines() []struct {
	name     string
	stream   func(seed int64) Stream
	hist     int
	test     int
	maxError float64
} {
	return []struct {
		name     string
		stream   func(seed int64) Stream
		hist     int
		test     int
		maxError float64
	}{
		{
			name:     "stagger",
			stream:   func(seed int64) Stream { return NewStagger(StaggerConfig{Seed: seed}) },
			hist:     20000,
			test:     10000,
			maxError: 0.02,
		},
		{
			name:     "hyperplane",
			stream:   func(seed int64) Stream { return NewHyperplane(HyperplaneConfig{Seed: seed}) },
			hist:     20000,
			test:     10000,
			maxError: 0.12,
		},
		{
			name:     "sea",
			stream:   func(seed int64) Stream { return NewSEA(SEAConfig{Seed: seed}) },
			hist:     20000,
			test:     10000,
			maxError: 0.06,
		},
	}
}

func TestEndToEndPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipelines in -short mode")
	}
	for _, pl := range pipelines() {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			g := pl.stream(23)
			hist := TakeDataset(g, pl.hist)
			opts := DefaultBuildOptions()
			opts.Seed = 17
			model, err := Build(hist, opts)
			if err != nil {
				t.Fatal(err)
			}
			if model.NumConcepts() < 2 {
				t.Fatalf("%s: found %d concepts", pl.name, model.NumConcepts())
			}
			test := TakeDataset(g, pl.test)
			res := Evaluate(model.NewPredictor(), test)
			if res.ErrorRate() > pl.maxError {
				t.Fatalf("%s: error %.5f exceeds %.5f", pl.name, res.ErrorRate(), pl.maxError)
			}
		})
	}
}

// TestHighOrderBeatsChasersEndToEnd asserts the headline comparison: on a
// shift-style stream the high-order model's error is a fraction of the
// chasing baselines'.
func TestHighOrderBeatsChasersEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison in -short mode")
	}
	g := NewStagger(StaggerConfig{Seed: 23})
	schema := g.Schema()
	hist := TakeDataset(g, 12000)
	test := TakeDataset(g, 24000)

	opts := DefaultBuildOptions()
	opts.Seed = 23
	model, err := Build(hist, opts)
	if err != nil {
		t.Fatal(err)
	}
	hom := Evaluate(model.NewPredictor(), test).ErrorRate()

	warmAndRun := func(a Online) float64 {
		for _, r := range hist.Records {
			a.Learn(r)
		}
		return Evaluate(a, test).ErrorRate()
	}
	rep := warmAndRun(NewRePro(ReProOptions{Schema: schema}))
	wceErr := warmAndRun(NewWCE(WCEOptions{Schema: schema}))

	if hom*3 > rep {
		t.Errorf("high-order error %.5f not clearly below RePro's %.5f", hom, rep)
	}
	if hom*3 > wceErr {
		t.Errorf("high-order error %.5f not clearly below WCE's %.5f", hom, wceErr)
	}
}

// TestLabeledLagEndToEnd exercises the paper's labeling model: labels only
// for a subset, with AdvanceTime bridging the gaps.
func TestLabeledLagEndToEnd(t *testing.T) {
	g := NewStagger(StaggerConfig{Seed: 23})
	hist := TakeDataset(g, 10000)
	opts := DefaultBuildOptions()
	opts.Seed = 23
	model, err := Build(hist, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := model.NewPredictor()
	test := TakeDataset(g, 10000)
	wrong := 0
	for i, r := range test.Records {
		if p.Predict(Record{Values: r.Values}) != r.Class {
			wrong++
		}
		if i%5 == 0 { // only 20% of records ever labeled
			p.AdvanceTime(4)
			p.Observe(r)
		}
	}
	if got := float64(wrong) / float64(test.Len()); got > 0.05 {
		t.Fatalf("error with 1-in-5 labels = %v, want <= 0.05", got)
	}
}
