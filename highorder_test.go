package highorder

import (
	"math"
	"path/filepath"
	"sort"
	"testing"
)

// TestPublicAPIEndToEnd exercises the documented three-call workflow.
func TestPublicAPIEndToEnd(t *testing.T) {
	gen := NewStagger(StaggerConfig{Seed: 42})
	history := TakeDataset(gen, 8000)

	opts := DefaultBuildOptions()
	opts.Seed = 42
	model, err := Build(history, opts)
	if err != nil {
		t.Fatal(err)
	}
	if model.NumConcepts() < 2 {
		t.Fatalf("NumConcepts = %d, want >= 2", model.NumConcepts())
	}

	p := model.NewPredictor()
	test := TakeDataset(gen, 8000)
	res := Evaluate(p, test)
	if res.ErrorRate() > 0.03 {
		t.Fatalf("public-API error rate = %v, want <= 0.03", res.ErrorRate())
	}
	if res.TestTime <= 0 {
		t.Fatal("test time not measured")
	}
}

// TestPublicAPICustomSchema builds a model over a user-defined stream.
func TestPublicAPICustomSchema(t *testing.T) {
	schema := &Schema{
		Attributes: []Attribute{
			{Name: "load", Kind: Numeric},
			{Name: "mode", Kind: Nominal, Values: []string{"day", "night"}},
		},
		Classes: []string{"ok", "alert"},
	}
	if err := schema.Validate(); err != nil {
		t.Fatal(err)
	}
	d := NewDataset(schema)
	// Two regimes: in the first, alerts fire at load > 0.8; in the second,
	// at load > 0.3.
	mk := func(start, n int, thr float64) {
		for i := 0; i < n; i++ {
			load := float64((start+i)%100) / 100
			class := 0
			if load > thr {
				class = 1
			}
			d.Add(Record{Values: []float64{load, float64(i % 2)}, Class: class})
		}
	}
	mk(0, 2000, 0.8)
	mk(0, 2000, 0.3)
	mk(0, 2000, 0.8)

	opts := DefaultBuildOptions()
	opts.Seed = 9
	model, err := Build(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if model.NumConcepts() < 2 {
		t.Fatalf("NumConcepts = %d, want >= 2", model.NumConcepts())
	}
	// The two regimes dominate; any extra concepts are boundary fragments.
	sizes := make([]int, 0, model.NumConcepts())
	for _, c := range model.Concepts {
		sizes = append(sizes, c.Size)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if sizes[0]+sizes[1] < d.Len()*8/10 {
		t.Fatalf("two largest concepts cover only %d of %d records (sizes %v)",
			sizes[0]+sizes[1], d.Len(), sizes)
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	gen := NewStagger(StaggerConfig{Seed: 5})
	history := TakeDataset(gen, 4000)
	opts := DefaultBuildOptions()
	opts.Seed = 5
	model, err := Build(history, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := SaveModel(path, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumConcepts() != model.NumConcepts() {
		t.Fatal("persistence changed the model")
	}
}

func TestLearnersAvailable(t *testing.T) {
	if NewTreeLearner().Name() != "c4.5" {
		t.Fatal("tree learner name")
	}
	if NewBayesLearner().Name() != "naive-bayes" {
		t.Fatal("bayes learner name")
	}
}

func TestGeneratorsImplementStream(t *testing.T) {
	for _, g := range []Stream{
		NewStagger(StaggerConfig{Seed: 1}),
		NewHyperplane(HyperplaneConfig{Seed: 1}),
		NewIntrusion(IntrusionConfig{Seed: 1}),
	} {
		if g.NumConcepts() < 2 {
			t.Fatalf("%T reports %d concepts", g, g.NumConcepts())
		}
		ds, ems := Take(g, 10)
		if ds.Len() != 10 || len(ems) != 10 {
			t.Fatalf("%T Take returned %d/%d", g, ds.Len(), len(ems))
		}
		if err := g.Schema().Validate(); err != nil {
			t.Fatalf("%T schema invalid: %v", g, err)
		}
	}
}

// TestPredictorProbabilitiesAreDistribution checks the exported predictor
// invariant through the facade.
func TestPredictorProbabilitiesAreDistribution(t *testing.T) {
	gen := NewStagger(StaggerConfig{Seed: 6})
	history := TakeDataset(gen, 4000)
	opts := DefaultBuildOptions()
	opts.Seed = 6
	model, err := Build(history, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := model.NewPredictor()
	test := TakeDataset(gen, 500)
	for _, r := range test.Records {
		p.Observe(r)
		sum := 0.0
		for _, v := range p.ActiveProbabilities() {
			if v < 0 {
				t.Fatal("negative active probability")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("active probabilities sum to %v", sum)
		}
	}
}
