package highorder

import (
	"highorder/internal/drift"
	"highorder/internal/dwm"
	"highorder/internal/hmm"
	"highorder/internal/repro"
	"highorder/internal/tree"
	"highorder/internal/vfdt"
	"highorder/internal/wce"
)

// This file re-exports the competitor algorithms, drift detectors and HMM
// utilities so downstream users can run the same comparisons as the
// experiments without reaching into internal packages.

// Baseline configuration types.
type (
	// ReProOptions configure the RePro baseline (Yang/Wu/Zhu, KDD'05).
	ReProOptions = repro.Options
	// WCEOptions configure the Weighted Classifier Ensemble baseline
	// (Wang/Fan/Yu/Han, KDD'03).
	WCEOptions = wce.Options
	// DWMOptions configure the Dynamic Weighted Majority baseline
	// (Kolter/Maloof, ICDM'03).
	DWMOptions = dwm.Options
)

// NewRePro returns the RePro baseline; Options.Learner defaults to the
// tree learner when nil.
func NewRePro(opts ReProOptions) Online {
	if opts.Learner == nil {
		opts.Learner = tree.NewLearner()
	}
	return repro.New(opts)
}

// NewWCE returns the Weighted Classifier Ensemble baseline;
// Options.Learner defaults to the tree learner when nil.
func NewWCE(opts WCEOptions) Online {
	if opts.Learner == nil {
		opts.Learner = tree.NewLearner()
	}
	return wce.New(opts)
}

// NewDWM returns the Dynamic Weighted Majority baseline.
func NewDWM(opts DWMOptions) Online { return dwm.New(opts) }

// Drift detectors.
type (
	// DriftDetector consumes per-record outcomes and signals changes.
	DriftDetector = drift.Detector
)

// NewWindowDetector returns RePro's windowed error-threshold trigger.
func NewWindowDetector(size int, threshold float64) DriftDetector {
	return drift.NewWindow(size, threshold)
}

// NewDDMDetector returns the DDM drift detector (Gama et al., 2004).
func NewDDMDetector() DriftDetector { return drift.NewDDM() }

// NewPageHinkleyDetector returns a Page–Hinkley change detector.
func NewPageHinkleyDetector() DriftDetector { return drift.NewPageHinkley() }

// HMM utilities (the paper's §III-A analogy, implemented).

// DecodeConcepts returns the Viterbi-decoded most likely concept id for
// each labeled record under the model's transition structure.
func DecodeConcepts(m *Model, records []Record) []int {
	return hmm.DecodeConcepts(m, records)
}

// SmoothConcepts returns forward–backward smoothed concept posteriors
// p(concept at t | all labels) — the offline counterpart of the
// predictor's filtered active probabilities.
func SmoothConcepts(m *Model, records []Record) [][]float64 {
	return hmm.SmoothConcepts(m, records)
}

// VFDTOptions configure the Hoeffding-tree baseline (Domingos/Hulten
// KDD'00; windowed mode follows the spirit of the paper's reference [1]).
type VFDTOptions = vfdt.Options

// NewVFDT returns an online Hoeffding tree.
func NewVFDT(opts VFDTOptions) Online { return vfdt.New(opts) }
