package main

// Store bench: how far past RAM can the session population grow? homload
// boots a tiered in-process server whose hot set is a small fraction of
// the session count, populates N concurrent sessions (each observes a
// few labeled records so it carries real predictor state — most spill to
// disk as the clock hand sweeps), then revisits the oldest slice, which
// by then is guaranteed cold, so every revisit is a transparent
// rehydration. Hydration latency comes from the server's own
// hom_session_hydrate_seconds exposition histogram rather than client
// timings, so it excludes HTTP overhead. The output is BENCH_store.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"

	"highorder/internal/clock"
	"highorder/internal/dataio"
	"highorder/internal/rng"
	"highorder/internal/serve"
)

// storeBenchOptions are the -store-bench* knobs (plus the shared tier
// and workload flags).
type storeBenchOptions struct {
	sessions, records, revisits int
	hot                         int
	wal                         bool
	spillDir                    string
	queue, workers              int
	stream                      string
	lambda                      float64
	seed                        int64
	maxRetries                  int
}

// storeBenchSummary is the BENCH_store.json schema.
type storeBenchSummary struct {
	Config struct {
		Sessions          int    `json:"sessions"`
		RecordsPerSession int    `json:"records_per_session"`
		HotSessions       int    `json:"hot_sessions"`
		WAL               bool   `json:"wal"`
		Stream            string `json:"stream"`
		Seed              int64  `json:"seed"`
		GoMaxProcs        int    `json:"gomaxprocs"`
	} `json:"config"`
	Requests struct {
		Attempted  int `json:"attempted"`
		Succeeded  int `json:"succeeded"`
		Retried429 int `json:"retried_429"`
		Failed     int `json:"failed"`
	} `json:"requests"`
	Populate struct {
		ElapsedSeconds    float64 `json:"elapsed_seconds"`
		SessionsPerSecond float64 `json:"sessions_per_second"`
		RecordsPerSecond  float64 `json:"records_per_second"`
	} `json:"populate"`
	Revisit struct {
		Sessions          int     `json:"sessions"`
		ElapsedSeconds    float64 `json:"elapsed_seconds"`
		SessionsPerSecond float64 `json:"sessions_per_second"`
	} `json:"revisit"`
	Store struct {
		LiveSessionsEnd int `json:"live_sessions_end"`
		HotEnd          int `json:"hot_end"`
		ColdEnd         int `json:"cold_end"`
		SpillTotal      int `json:"spill_total"`
		HydrateTotal    int `json:"hydrate_total"`
		WALReplayed     int `json:"wal_replayed_records"`
	} `json:"store"`
	// HydrateLatencyMS is estimated from the hom_session_hydrate_seconds
	// exposition histogram by bucket interpolation (obs.BucketQuantile).
	HydrateLatencyMS struct {
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
		Count int     `json:"count"`
	} `json:"hydrate_latency_ms"`
}

// runStoreBench is the -store-bench entry point. It exits the process
// like main's single-server path does.
func runStoreBench(clk clock.Clock, slp clock.Sleeper, modelPath, out string, o storeBenchOptions) {
	m, err := dataio.LoadModel(modelPath)
	if err != nil {
		fail(err)
	}
	dir := o.spillDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "homload-store-")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(dir)
	}
	if o.records < 1 {
		o.records = 1
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	srv, err := serve.NewTiered(m, serve.Options{
		QueueDepth: o.queue, Workers: o.workers,
		// The whole point is holding more sessions than the default cap.
		MaxSessions: o.sessions + 16,
		Tier:        serve.TierOptions{SpillDir: dir, HotSessions: o.hot, WAL: o.wal},
	})
	if err != nil {
		fail(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()
	base := "http://" + l.Addr().String()

	// Session stream seeds derive from the root seed in session order, as
	// in the other modes, so the workload is a pure function of -seed.
	root := rng.New(o.seed)
	seeds := make([]int64, o.sessions)
	for i := range seeds {
		seeds[i] = root.Int63()
	}

	conc := min(64, o.sessions)
	results := make([]*sessionResult, conc)
	ids := make([]string, o.sessions)
	probe := make([][]float64, o.sessions) // one valid vector per session for revisits
	eachSession := func(f func(r *sessionResult, c *serve.Client, i int)) float64 {
		work := make(chan int)
		var wg sync.WaitGroup
		start := clk()
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := serve.NewClient(base, nil)
				for i := range work {
					f(results[w], c, i)
				}
			}(w)
		}
		for i := 0; i < o.sessions; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		return clk().Sub(start).Seconds()
	}

	for w := range results {
		results[w] = &sessionResult{}
	}
	popElapsed := eachSession(func(r *sessionResult, c *serve.Client, i int) {
		g, err := newStream(o.stream, o.lambda, seeds[i])
		if err != nil {
			r.err = err
			r.failed++
			r.attempted++
			return
		}
		vectors := make([][]float64, o.records)
		classes := make([]int, o.records)
		for j := range vectors {
			rec := g.Next().Record
			vectors[j] = rec.Values
			classes[j] = rec.Class
		}
		var created serve.CreateSessionResponse
		if !r.call(clk, slp, o.maxRetries, func() error {
			var err error
			created, err = c.CreateSession(serve.CreateSessionRequest{})
			return err
		}) {
			return
		}
		ids[i] = created.ID
		probe[i] = vectors[0]
		r.call(clk, slp, o.maxRetries, func() error {
			_, err := c.Observe(created.ID, vectors, classes)
			return err
		})
	})

	// Revisit the oldest sessions: created first, they have been clock-
	// evicted longest ago, so each classify is a cold-tier hydration.
	revisits := o.revisits
	if revisits <= 0 {
		revisits = max(1, min(o.sessions/10, 10000))
	}
	revisits = min(revisits, o.sessions)
	revElapsed := eachSession(func(r *sessionResult, c *serve.Client, i int) {
		if i >= revisits || ids[i] == "" {
			return
		}
		r.call(clk, slp, o.maxRetries, func() error {
			_, err := c.Classify(ids[i], [][]float64{probe[i]}, false)
			return err
		})
	})

	text, err := serve.NewClient(base, nil).Metrics()
	if err != nil {
		fail(err)
	}
	cancel()
	if err := <-served; err != nil {
		fail(fmt.Errorf("draining in-process server: %w", err))
	}

	s := &storeBenchSummary{}
	s.Config.Sessions = o.sessions
	s.Config.RecordsPerSession = o.records
	s.Config.HotSessions = o.hot
	s.Config.WAL = o.wal
	s.Config.Stream = o.stream
	s.Config.Seed = o.seed
	s.Config.GoMaxProcs = runtime.GOMAXPROCS(0)
	for _, r := range results {
		s.Requests.Attempted += r.attempted
		s.Requests.Succeeded += r.succeeded
		s.Requests.Retried429 += r.retried
		s.Requests.Failed += r.failed
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "homload: store bench session error: %v\n", r.err)
		}
	}
	s.Populate.ElapsedSeconds = popElapsed
	if popElapsed > 0 {
		s.Populate.SessionsPerSecond = float64(o.sessions) / popElapsed
		s.Populate.RecordsPerSecond = float64(o.sessions*o.records) / popElapsed
	}
	s.Revisit.Sessions = revisits
	s.Revisit.ElapsedSeconds = revElapsed
	if revElapsed > 0 {
		s.Revisit.SessionsPerSecond = float64(revisits) / revElapsed
	}
	mv := func(name string) int {
		v, _ := serve.MetricValue(text, name)
		return int(v)
	}
	s.Store.LiveSessionsEnd = mv("homserve_sessions_live")
	s.Store.HotEnd = mv("hom_sessions_hot")
	s.Store.ColdEnd = mv("hom_sessions_cold")
	s.Store.SpillTotal = mv("hom_spill_total")
	s.Store.HydrateTotal = mv("hom_hydrate_total")
	s.Store.WALReplayed = mv("hom_wal_replayed_records_total")
	if qs, ok := serve.HistogramQuantiles(text, "hom_session_hydrate_seconds", nil, 0.50, 0.99); ok {
		s.HydrateLatencyMS.P50 = qs[0] * 1000
		s.HydrateLatencyMS.P99 = qs[1] * 1000
	}
	s.HydrateLatencyMS.Count = mv("hom_session_hydrate_seconds_count")

	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("homload: store bench %d sessions (hot %d): %d spills, %d hydrations, hydrate p50 %.3fms p99 %.3fms -> %s\n",
		o.sessions, s.Config.HotSessions, s.Store.SpillTotal, s.Store.HydrateTotal,
		s.HydrateLatencyMS.P50, s.HydrateLatencyMS.P99, out)

	switch {
	case s.Requests.Failed > 0 ||
		s.Requests.Attempted != s.Requests.Succeeded+s.Requests.Retried429+s.Requests.Failed:
		fmt.Fprintf(os.Stderr, "homload: store bench request accounting: %+v\n", s.Requests)
		os.Exit(1)
	case s.Store.LiveSessionsEnd != o.sessions:
		fmt.Fprintf(os.Stderr, "homload: store bench ended with %d live sessions, want %d\n",
			s.Store.LiveSessionsEnd, o.sessions)
		os.Exit(1)
	case s.Store.HydrateTotal == 0:
		fmt.Fprintln(os.Stderr, "homload: store bench measured no hydrations; raise -store-bench or lower -hot-sessions")
		os.Exit(1)
	}
}
