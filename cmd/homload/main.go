// Command homload drives deterministic load against a homserve instance
// and writes a BENCH_serve.json throughput/latency summary.
//
// It runs N concurrent client sessions. Each session streams its own
// seeded synthetic stream (internal/synth) through the classify + observe
// endpoints under the test-then-train protocol, honoring the server's
// backpressure: 429 responses are retried after the Retry-After hint and
// counted. Every HTTP call is accounted for — attempted equals succeeded
// plus rejected-then-retried plus failed — so a run with failures is
// loudly nonzero, never silently short.
//
// With -addr it targets a running server; with -model it boots an
// in-process server on a loopback listener (the HTTP path is still fully
// exercised) and drains it gracefully at the end — the mode verify.sh's
// smoke step and the committed BENCH_serve.json use.
//
// Fleet mode (-fleet, with -model) boots N replicas behind an in-process
// gate.Gateway instead and drives every session through the gateway: it
// can force a mid-run rebalance (-fleet-churn), crash a replica
// (-fleet-kill), hand capacity to the metrics-driven autoscaler
// (-fleet-autoscale min:max), or sweep replica counts (-fleet-sweep
// 1,2,4), while checking each served session bit-for-bit against an
// offline twin predictor. Fleet runs write BENCH_gate.json.
//
// With -spill-dir the in-process server (or every fleet replica, each
// under its own subdirectory) runs the tiered session store: a bounded
// hot set (-hot-sessions) over disk spill segments, with -wal adding a
// fsync'd write-ahead label log. Store-bench mode (-store-bench N, with
// -model) populates N concurrent sessions through a tiered server —
// far more than fit hot — then revisits the coldest and writes a
// BENCH_store.json hydration profile from the server's own
// hom_session_hydrate_seconds histogram.
//
// Usage:
//
//	homload -model model.gob -sessions 8 -records 1000 [-batch 16]
//	        [-stream stagger] [-seed 1] [-out BENCH_serve.json]
//	homload -addr http://127.0.0.1:8080 ...
//	homload -model model.gob -fleet 3 -fleet-churn [-fleet-service-delay 2ms]
//	homload -model model.gob -fleet-sweep 1,2,4 -fleet-service-delay 5ms
//	homload -model model.gob -store-bench 100000 -hot-sessions 4096 -wal
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"highorder/internal/clock"
	"highorder/internal/dataio"
	"highorder/internal/rng"
	"highorder/internal/serve"
	"highorder/internal/synth"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running homserve (mutually exclusive with -model)")
	modelPath := flag.String("model", "", "model to serve in-process on a loopback listener")
	sessions := flag.Int("sessions", 8, "concurrent client sessions")
	records := flag.Int("records", 1000, "records per session")
	batch := flag.Int("batch", 16, "records per classify/observe request")
	stream := flag.String("stream", "stagger", "stream per session: stagger, hyperplane, or intrusion")
	lambda := flag.Float64("lambda", 0, "concept changing rate (0 = stream default)")
	seed := flag.Int64("seed", 1, "root seed; session streams derive from it")
	queue := flag.Int("queue", 0, "in-process server queue depth (0 = default)")
	workers := flag.Int("workers", 0, "in-process server workers (0 = GOMAXPROCS)")
	microBatch := flag.Int("micro-batch", 0, "in-process server micro-batch (0 = default)")
	maxRetries := flag.Int("max-retries", 100, "429 retries before a request counts as failed")
	out := flag.String("out", "BENCH_serve.json", "summary output path")
	maxprocs := flag.Int("gomaxprocs", 0, "set runtime.GOMAXPROCS for the run (0 keeps the default)")
	fleetN := flag.Int("fleet", 0, "fleet mode: boot N replicas behind an in-process gateway (needs -model; 0 = off)")
	fleetChurn := flag.Bool("fleet-churn", false, "fleet mode: join a replica at 1/3 progress and gracefully retire one at 2/3")
	fleetKill := flag.Bool("fleet-kill", false, "fleet mode: crash a replica at 1/2 progress; clients recreate lost sessions")
	fleetAutoscale := flag.String("fleet-autoscale", "", `fleet mode: autoscale bounds "min:max" (boots min replicas)`)
	fleetScaleInterval := flag.Duration("fleet-scale-interval", 300*time.Millisecond, "fleet mode: autoscaler tick period")
	fleetSweep := flag.String("fleet-sweep", "", `fleet mode: comma-separated replica counts to sweep, e.g. "1,2,4"`)
	fleetServiceDelay := flag.Duration("fleet-service-delay", 0, "fleet mode: injected per-observe service delay so replicas are latency-bound")
	fleetVerify := flag.Bool("fleet-verify", true, "fleet mode: check every served session bit-for-bit against an offline twin")
	flightDir := flag.String("flight-dir", "", "fleet mode: record every trace on client, gateway, and replicas; write per-process flight dumps here at end of run")
	spillDir := flag.String("spill-dir", "", "tiered session store: spill directory for the in-process server or fleet replicas (empty = tiering off; the store bench defaults to a temp dir)")
	hotSessions := flag.Int("hot-sessions", 0, "tiered session store: in-memory hot-set bound (0 = default; needs -spill-dir or -store-bench)")
	wal := flag.Bool("wal", false, "tiered session store: fsync a write-ahead label log so acknowledged observes survive a crash")
	storeBench := flag.Int("store-bench", 0, "store bench: populate N concurrent sessions through a tiered in-process server, revisit cold ones, and write a hydration profile (needs -model; 0 = off)")
	storeRecords := flag.Int("store-records", 3, "store bench: labeled records observed per session")
	storeRevisits := flag.Int("store-revisits", 0, "store bench: cold sessions revisited to measure hydration (0 = sessions/10, capped at 10000)")
	codecName := flag.String("codec", "json", `classify/observe wire codec: "json" or "binary"`)
	compiled := flag.Bool("compiled", true, "in-process server: serve sessions on the compiled classify hot path (false forces the interpreted predictor, for A/B runs)")
	classifyBench := flag.Int("classify-bench", 0, "after the load run, classify N records through a fresh warmed session per codec and record per-codec throughput in the summary (0 = off)")
	flag.Parse()

	var codec serve.Codec
	switch *codecName {
	case "json":
		codec = serve.CodecJSON
	case "binary":
		codec = serve.CodecBinary
	default:
		fmt.Fprintf(os.Stderr, "homload: -codec must be json or binary, got %q\n", *codecName)
		os.Exit(2)
	}

	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}
	if *sessions < 1 || *records < 1 || *batch < 1 {
		fmt.Fprintln(os.Stderr, "homload: -sessions, -records, and -batch must be positive")
		os.Exit(2)
	}

	clk := clock.Clock(nil).OrWall()
	slp := clock.Sleeper(nil).OrReal()

	if *storeBench > 0 {
		if *modelPath == "" || *addr != "" {
			fmt.Fprintln(os.Stderr, "homload: -store-bench needs -model (and no -addr)")
			os.Exit(2)
		}
		outPath := *out
		if outPath == "BENCH_serve.json" && !flagWasSet("out") {
			outPath = "BENCH_store.json"
		}
		runStoreBench(clk, slp, *modelPath, outPath, storeBenchOptions{
			sessions: *storeBench, records: *storeRecords, revisits: *storeRevisits,
			hot: *hotSessions, wal: *wal, spillDir: *spillDir,
			queue: *queue, workers: *workers,
			stream: *stream, lambda: *lambda, seed: *seed, maxRetries: *maxRetries,
		})
		return
	}

	if *fleetN > 0 || *fleetSweep != "" || *fleetAutoscale != "" {
		if *modelPath == "" || *addr != "" {
			fmt.Fprintln(os.Stderr, "homload: fleet mode needs -model (and no -addr)")
			os.Exit(2)
		}
		sweep, err := parseSweep(*fleetSweep)
		if err != nil {
			fail(err)
		}
		fo := fleetOptions{
			replicas:      *fleetN,
			churn:         *fleetChurn,
			kill:          *fleetKill,
			autoscale:     *fleetAutoscale,
			scaleInterval: *fleetScaleInterval,
			sweep:         sweep,
			serviceDelay:  *fleetServiceDelay,
			verify:        *fleetVerify,
			flightDir:     *flightDir,
			spillDir:      *spillDir,
			hotSessions:   *hotSessions,
			wal:           *wal,
		}
		if fo.autoscale != "" {
			// The autoscaler owns capacity: start from the lower bound and
			// let the load grow the fleet.
			minR, _, err := parseBounds(fo.autoscale)
			if err != nil {
				fail(err)
			}
			fo.replicas = minR
		}
		if fo.replicas < 1 {
			fo.replicas = 1
		}
		outPath := *out
		if outPath == "BENCH_serve.json" && !flagWasSet("out") {
			outPath = "BENCH_gate.json"
		}
		w := fleetWorkload{
			sessions: *sessions, records: *records, batch: *batch, maxRetries: *maxRetries,
			stream: *stream, lambda: *lambda, seed: *seed,
			queue: *queue, workers: *workers,
			codec: codec, compiled: *compiled,
		}
		runFleet(clk, slp, *modelPath, outPath, w, fo)
		return
	}

	if (*addr == "") == (*modelPath == "") {
		fmt.Fprintln(os.Stderr, "homload: exactly one of -addr or -model is required")
		os.Exit(2)
	}
	base := *addr
	var shutdown func() error
	servedCompiled := false
	if *modelPath != "" {
		m, err := dataio.LoadModel(*modelPath)
		if err != nil {
			fail(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		srv, err := serve.NewTiered(m, serve.Options{
			QueueDepth: *queue, Workers: *workers, MicroBatch: *microBatch,
			Interpreted: !*compiled,
			Tier:        serve.TierOptions{SpillDir: *spillDir, HotSessions: *hotSessions, WAL: *wal},
		})
		if err != nil {
			fail(err)
		}
		servedCompiled = srv.Compiled()
		ctx, cancel := context.WithCancel(context.Background())
		served := make(chan error, 1)
		go func() { served <- srv.Serve(ctx, l) }()
		base = "http://" + l.Addr().String()
		shutdown = func() error {
			cancel()
			return <-served
		}
	}

	// Derive every session's stream seed from the root seed up front, in
	// session order, so the generated record sequences are a pure function
	// of -seed regardless of goroutine scheduling.
	root := rng.New(*seed)
	seeds := make([]int64, *sessions)
	for i := range seeds {
		seeds[i] = root.Int63()
	}

	start := clk()
	results := make([]*sessionResult, *sessions)
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runSession(clk, slp, base, *stream, *lambda, seeds[i], *records, *batch, *maxRetries, codec)
		}(i)
	}
	wg.Wait()
	elapsed := clk().Sub(start).Seconds()

	sum := summarize(results, *sessions, *records, *batch, *stream, *seed, elapsed)
	sum.Config.Codec = *codecName
	sum.Config.Compiled = servedCompiled

	if *classifyBench > 0 {
		cb, err := runClassifyBench(clk, base, *classifyBench, servedCompiled)
		if err != nil {
			fail(fmt.Errorf("classify bench: %w", err))
		}
		sum.ClassifyBench = cb
	}

	// The server's own view: high-water queue depth and rejection count.
	if text, err := serve.NewClient(base, nil).Metrics(); err == nil {
		if v, ok := serve.MetricValue(text, "homserve_queue_depth_max"); ok {
			sum.Server.MaxQueueDepth = int(v)
		}
		if v, ok := serve.MetricValue(text, "homserve_rejected_total"); ok {
			sum.Server.RejectedTotal = int(v)
		}
		if v, ok := serve.MetricValue(text, "homserve_sessions_live"); ok {
			sum.Server.LiveSessionsEnd = int(v)
		}
		if qs, ok := serve.HistogramQuantiles(text, "homserve_request_seconds",
			map[string]string{"endpoint": "classify"}, 0.50, 0.95, 0.99); ok {
			sum.ServerLatencyMS.ClassifyP50 = qs[0] * 1000
			sum.ServerLatencyMS.ClassifyP95 = qs[1] * 1000
			sum.ServerLatencyMS.ClassifyP99 = qs[2] * 1000
		}
		if qs, ok := serve.HistogramQuantiles(text, "homserve_request_seconds",
			map[string]string{"endpoint": "observe"}, 0.50, 0.95, 0.99); ok {
			sum.ServerLatencyMS.ObserveP50 = qs[0] * 1000
			sum.ServerLatencyMS.ObserveP95 = qs[1] * 1000
			sum.ServerLatencyMS.ObserveP99 = qs[2] * 1000
		}
	}

	if shutdown != nil {
		if err := shutdown(); err != nil {
			fail(fmt.Errorf("draining in-process server: %w", err))
		}
	}

	if err := writeSummary(*out, sum); err != nil {
		fail(err)
	}
	fmt.Printf("homload: %d sessions x %d records: %.0f records/s, p50 %.2fms p99 %.2fms, %d retries, %d failed -> %s\n",
		*sessions, *records, sum.RecordsPerSecond, sum.LatencyMS.P50, sum.LatencyMS.P99, sum.Requests.Retried429, sum.Requests.Failed, *out)
	if sum.Requests.Failed > 0 || sum.Requests.Attempted != sum.Requests.Succeeded+sum.Requests.Retried429+sum.Requests.Failed {
		fmt.Fprintf(os.Stderr, "homload: request accounting: %+v\n", sum.Requests)
		os.Exit(1)
	}
}

// sessionResult is one session goroutine's accounting.
type sessionResult struct {
	attempted, succeeded, retried, failed int
	latencies                             []float64 // seconds, successful calls only
	records                               int
	predErrors                            int
	err                                   error
}

// newStream builds a session's deterministic record source.
func newStream(name string, lambda float64, seed int64) (synth.Stream, error) {
	switch name {
	case "stagger":
		return synth.NewStagger(synth.StaggerConfig{Lambda: lambda, Seed: seed}), nil
	case "hyperplane":
		return synth.NewHyperplane(synth.HyperplaneConfig{Lambda: lambda, Seed: seed}), nil
	case "intrusion":
		return synth.NewIntrusion(synth.IntrusionConfig{Lambda: lambda, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown stream %q", name)
	}
}

// call runs one HTTP call with backpressure retry (429/503), timing
// successful attempts. The backoff sleep goes through the injected
// clock.Sleeper (the sleeploop analyzer forbids raw time.Sleep in retry
// loops), so load runs are deterministic under a fake sleeper in tests.
func (r *sessionResult) call(clk clock.Clock, slp clock.Sleeper, maxRetries int, f func() error) bool {
	for retry := 0; ; retry++ {
		r.attempted++
		start := clk()
		err := f()
		if err == nil {
			r.latencies = append(r.latencies, clk().Sub(start).Seconds())
			r.succeeded++
			return true
		}
		var he *serve.HTTPError
		if errors.As(err, &he) && he.Retryable() && retry < maxRetries {
			r.retried++
			backoff := he.RetryAfter
			if backoff <= 0 {
				backoff = 50 * time.Millisecond
			}
			slp.Sleep(backoff)
			continue
		}
		r.failed++
		r.err = err
		return false
	}
}

func runSession(clk clock.Clock, slp clock.Sleeper, base, stream string, lambda float64, seed int64, records, batch, maxRetries int, codec serve.Codec) *sessionResult {
	r := &sessionResult{}
	g, err := newStream(stream, lambda, seed)
	if err != nil {
		r.err = err
		r.failed++
		r.attempted++
		return r
	}
	c := serve.NewClient(base, nil).WithCodec(codec)

	var created serve.CreateSessionResponse
	if !r.call(clk, slp, maxRetries, func() error {
		var err error
		created, err = c.CreateSession(serve.CreateSessionRequest{})
		return err
	}) {
		return r
	}

	for done := 0; done < records; {
		n := min(batch, records-done)
		vectors := make([][]float64, n)
		classes := make([]int, n)
		for i := 0; i < n; i++ {
			rec := g.Next().Record
			vectors[i] = rec.Values
			classes[i] = rec.Class
		}
		var resp serve.ClassifyResponse
		if !r.call(clk, slp, maxRetries, func() error {
			var err error
			resp, err = c.Classify(created.ID, vectors, false)
			return err
		}) {
			return r
		}
		for i, p := range resp.Predictions {
			if p != classes[i] {
				r.predErrors++
			}
		}
		if !r.call(clk, slp, maxRetries, func() error {
			_, err := c.Observe(created.ID, vectors, classes)
			return err
		}) {
			return r
		}
		done += n
		r.records += n
	}

	r.call(clk, slp, maxRetries, func() error { return c.CloseSession(created.ID) })
	return r
}

// summary is the BENCH_serve.json schema.
type summary struct {
	Config struct {
		Sessions          int    `json:"sessions"`
		RecordsPerSession int    `json:"records_per_session"`
		Batch             int    `json:"batch"`
		Stream            string `json:"stream"`
		Seed              int64  `json:"seed"`
		GoMaxProcs        int    `json:"gomaxprocs"`
		Codec             string `json:"codec"`
		Compiled          bool   `json:"compiled"`
	} `json:"config"`
	Requests struct {
		Attempted  int `json:"attempted"`
		Succeeded  int `json:"succeeded"`
		Retried429 int `json:"retried_429"`
		Failed     int `json:"failed"`
	} `json:"requests"`
	Records           int     `json:"records"`
	PredictionErrors  int     `json:"prediction_errors"`
	ErrorRate         float64 `json:"error_rate"`
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	RequestsPerSecond float64 `json:"requests_per_second"`
	RecordsPerSecond  float64 `json:"records_per_second"`
	LatencyMS         struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Server struct {
		MaxQueueDepth   int `json:"max_queue_depth"`
		RejectedTotal   int `json:"rejected_total"`
		LiveSessionsEnd int `json:"live_sessions_end"`
	} `json:"server"`
	// ServerLatencyMS is the server's own view of request latency,
	// estimated from the homserve_request_seconds exposition histogram by
	// bucket interpolation — coarser than the client-side samples above but
	// free of client scheduling noise.
	ServerLatencyMS struct {
		ClassifyP50 float64 `json:"classify_p50"`
		ClassifyP95 float64 `json:"classify_p95"`
		ClassifyP99 float64 `json:"classify_p99"`
		ObserveP50  float64 `json:"observe_p50"`
		ObserveP95  float64 `json:"observe_p95"`
		ObserveP99  float64 `json:"observe_p99"`
	} `json:"server_latency_ms"`
	// ClassifyBench, when -classify-bench is set, is a pure classify-path
	// throughput probe run after the mixed workload: one fresh session per
	// codec, warmed with 128 labeled records, then N records classified in
	// large batches with no observe traffic interleaved. It isolates the
	// serve classify hot path (and the wire codec around it) from
	// test-then-train protocol overhead.
	ClassifyBench *classifyBench `json:"classify_bench,omitempty"`
}

// classifyBench is the per-codec classify-only throughput section.
type classifyBench struct {
	Records  int                        `json:"records"`
	Batch    int                        `json:"batch"`
	Compiled bool                       `json:"compiled"`
	Codecs   map[string]codecBenchStats `json:"codecs"`
}

type codecBenchStats struct {
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	RecordsPerSecond float64 `json:"records_per_second"`
}

// classifyBenchBatch keeps one request comfortably under the server's
// request-size cap for both codecs while amortizing per-request cost.
const classifyBenchBatch = 2048

// runClassifyBench measures classify-only throughput per wire codec
// against the already-running server at base.
func runClassifyBench(clk clock.Clock, base string, records int, compiled bool) (*classifyBench, error) {
	cb := &classifyBench{
		Records:  records,
		Batch:    classifyBenchBatch,
		Compiled: compiled,
		Codecs:   map[string]codecBenchStats{},
	}
	for _, cc := range []struct {
		name  string
		codec serve.Codec
	}{{"json", serve.CodecJSON}, {"binary", serve.CodecBinary}} {
		c := serve.NewClient(base, nil).WithCodec(cc.codec)
		created, err := c.CreateSession(serve.CreateSessionRequest{})
		if err != nil {
			return nil, fmt.Errorf("%s: create session: %w", cc.name, err)
		}
		// Warm the session with labeled records so the served predictor has a
		// concentrated prior — the steady state the hot path is built for.
		g := synth.NewStagger(synth.StaggerConfig{Seed: 42, Lambda: 0.02})
		warmVec := make([][]float64, 128)
		warmCls := make([]int, len(warmVec))
		for i := range warmVec {
			rec := g.Next().Record
			warmVec[i] = rec.Values
			warmCls[i] = rec.Class
		}
		if _, err := c.Observe(created.ID, warmVec, warmCls); err != nil {
			return nil, fmt.Errorf("%s: warmup observe: %w", cc.name, err)
		}
		vectors := make([][]float64, classifyBenchBatch)
		for i := range vectors {
			vectors[i] = g.Next().Record.Values
		}
		start := clk()
		for done := 0; done < records; {
			n := min(classifyBenchBatch, records-done)
			if _, err := c.Classify(created.ID, vectors[:n], false); err != nil {
				return nil, fmt.Errorf("%s: classify: %w", cc.name, err)
			}
			done += n
		}
		elapsed := clk().Sub(start).Seconds()
		stats := codecBenchStats{ElapsedSeconds: elapsed}
		if elapsed > 0 {
			stats.RecordsPerSecond = float64(records) / elapsed
		}
		cb.Codecs[cc.name] = stats
		if err := c.CloseSession(created.ID); err != nil {
			return nil, fmt.Errorf("%s: close session: %w", cc.name, err)
		}
	}
	return cb, nil
}

func summarize(results []*sessionResult, sessions, records, batch int, stream string, seed int64, elapsed float64) *summary {
	s := &summary{}
	s.Config.Sessions = sessions
	s.Config.RecordsPerSession = records
	s.Config.Batch = batch
	s.Config.Stream = stream
	s.Config.Seed = seed
	// Recorded so committed bench numbers carry their parallelism context.
	s.Config.GoMaxProcs = runtime.GOMAXPROCS(0)

	var lats []float64
	for _, r := range results {
		s.Requests.Attempted += r.attempted
		s.Requests.Succeeded += r.succeeded
		s.Requests.Retried429 += r.retried
		s.Requests.Failed += r.failed
		s.Records += r.records
		s.PredictionErrors += r.predErrors
		lats = append(lats, r.latencies...)
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "homload: session error: %v\n", r.err)
		}
	}
	if s.Records > 0 {
		s.ErrorRate = float64(s.PredictionErrors) / float64(s.Records)
	}
	s.ElapsedSeconds = elapsed
	if elapsed > 0 {
		s.RequestsPerSecond = float64(s.Requests.Succeeded) / elapsed
		s.RecordsPerSecond = float64(s.Records) / elapsed
	}
	sort.Float64s(lats)
	s.LatencyMS.P50 = percentileMS(lats, 0.50)
	s.LatencyMS.P90 = percentileMS(lats, 0.90)
	s.LatencyMS.P99 = percentileMS(lats, 0.99)
	if n := len(lats); n > 0 {
		s.LatencyMS.Max = lats[n-1] * 1000
	}
	return s
}

// percentileMS returns the q-quantile of sorted seconds, in milliseconds.
func percentileMS(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx] * 1000
}

func writeSummary(path string, s *summary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// flagWasSet reports whether the named flag appeared on the command
// line (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "homload: %v\n", err)
	os.Exit(1)
}
