package main

// Fleet mode: instead of one homserve, homload boots a gate.Fleet of
// in-process replicas behind a gate.Gateway on a loopback listener and
// drives every session through the gateway's HTTP path. Mid-run it can
// force a rebalance (join a replica, gracefully retire another), crash a
// replica outright, or hand capacity decisions to the metrics-driven
// autoscaler — while every session's served state is checked
// bit-for-bit against an offline twin predictor fed the same acknowledged
// labels. The output is BENCH_gate.json.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"highorder/internal/clock"
	"highorder/internal/core"
	"highorder/internal/data"
	"highorder/internal/dataio"
	"highorder/internal/fault"
	"highorder/internal/gate"
	"highorder/internal/obs"
	"highorder/internal/rng"
	"highorder/internal/serve"
)

// fleetOptions are the -fleet* knobs.
type fleetOptions struct {
	replicas      int
	churn         bool
	kill          bool
	autoscale     string // "min:max", empty = off
	scaleInterval time.Duration
	sweep         []int
	serviceDelay  time.Duration
	verify        bool
	flightDir     string // write per-process flight dumps here (empty = off)
	spillDir      string // tiered replicas: per-replica spill subtrees here (empty = off)
	hotSessions   int
	wal           bool
}

// fleetWorkload is the per-run workload shape shared by the main run and
// every sweep point.
type fleetWorkload struct {
	sessions, records, batch, maxRetries int
	stream                               string
	lambda                               float64
	seed                                 int64
	queue, workers                       int
	codec                                serve.Codec
	compiled                             bool
}

// parseSweep parses "1,2,4" into replica counts.
func parseSweep(v string) ([]int, error) {
	if v == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(v, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sweep point %q: want a positive replica count", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseBounds parses "min:max" autoscale bounds.
func parseBounds(v string) (int, int, error) {
	lo, hi, ok := strings.Cut(v, ":")
	if !ok {
		return 0, 0, fmt.Errorf("autoscale bounds %q: want min:max", v)
	}
	minR, err1 := strconv.Atoi(lo)
	maxR, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || minR < 1 || maxR < minR {
		return 0, 0, fmt.Errorf("autoscale bounds %q: want 1 <= min <= max", v)
	}
	return minR, maxR, nil
}

// fleetSessionResult extends the per-session accounting with the fleet
// failure modes: session-loss events survived by recreating, and the
// served-vs-offline verification verdict.
type fleetSessionResult struct {
	sessionResult
	lost         int // replica-crash session losses tolerated by recreating
	verified     bool
	bitIdentical bool
}

// sessionLost reports whether err means the session's replica is gone —
// the gateway answers 502 while the corpse is still routed and 404 once
// the health loop has dropped its routes.
func sessionLost(err error) bool {
	var he *serve.HTTPError
	if !errors.As(err, &he) {
		return false
	}
	return he.Status == http.StatusBadGateway || he.Status == http.StatusNotFound
}

// runFleetSession is runSession through the gateway: same call
// accounting, plus an offline twin predictor fed exactly the acknowledged
// observe batches (bit-identity proof at the end), and — when allowLoss —
// recovery from a crashed replica by recreating the session and resetting
// the twin, so the verdict stays valid for recreated sessions too.
func runFleetSession(clk clock.Clock, slp clock.Sleeper, base string, w fleetWorkload, seed int64,
	model *core.Model, allowLoss bool, rec *obs.Recorder, progress *atomic.Int64) *fleetSessionResult {
	r := &fleetSessionResult{}
	g, err := newStream(w.stream, w.lambda, seed)
	if err != nil {
		r.err = err
		r.failed++
		r.attempted++
		return r
	}
	c := serve.NewClient(base, nil).WithCodec(w.codec)
	if rec != nil {
		c = c.WithRecorder(rec)
	}

	var twin *core.Predictor
	if model != nil {
		twin = model.NewPredictor()
	}
	create := func() (string, bool) {
		var created serve.CreateSessionResponse
		ok := r.call(clk, slp, w.maxRetries, func() error {
			var err error
			created, err = c.CreateSession(serve.CreateSessionRequest{})
			return err
		})
		return created.ID, ok
	}
	// convert moves one failed call into the lost bucket when the failure
	// means the session's replica crashed (bounded so a sick fleet still
	// fails loudly instead of looping).
	convert := func() bool {
		if !allowLoss || !sessionLost(r.err) || r.lost >= 50 {
			return false
		}
		r.failed--
		r.lost++
		r.err = nil
		return true
	}
	// recoverLoss turns a session-loss failure into a fresh session and a
	// fresh twin; the caller replays the interrupted batch against both.
	// Creates may also land on the corpse until the health loop drops it,
	// so they get the same tolerance.
	recoverLoss := func(id *string) bool {
		if !convert() {
			return false
		}
		if model != nil {
			twin = model.NewPredictor()
		}
		for {
			next, ok := create()
			if ok {
				*id = next
				return true
			}
			if !convert() {
				return false
			}
			slp.Sleep(50 * time.Millisecond)
		}
	}

	id, ok := create()
	if !ok {
		return r
	}

	for done := 0; done < w.records; {
		n := min(w.batch, w.records-done)
		vectors := make([][]float64, n)
		classes := make([]int, n)
		for i := 0; i < n; i++ {
			rec := g.Next().Record
			vectors[i] = rec.Values
			classes[i] = rec.Class
		}
		var resp serve.ClassifyResponse
		for {
			if r.call(clk, slp, w.maxRetries, func() error {
				var err error
				resp, err = c.Classify(id, vectors, false)
				return err
			}) {
				break
			}
			if !recoverLoss(&id) {
				return r
			}
		}
		for i, p := range resp.Predictions {
			if p != classes[i] {
				r.predErrors++
			}
		}
		for {
			if r.call(clk, slp, w.maxRetries, func() error {
				_, err := c.Observe(id, vectors, classes)
				return err
			}) {
				break
			}
			if !recoverLoss(&id) {
				return r
			}
		}
		if twin != nil {
			for i := 0; i < n; i++ {
				twin.Observe(data.Record{Values: vectors[i], Class: classes[i]})
			}
		}
		done += n
		r.records += n
		progress.Add(int64(n))
	}

	if twin != nil {
		var info serve.SessionInfo
		if r.call(clk, slp, w.maxRetries, func() error {
			var err error
			info, err = c.Info(id)
			return err
		}) {
			r.verified = true
			r.bitIdentical = activeBitsEqual(info, twin.Snapshot())
		} else if !convert() {
			return r
		}
	}
	if !r.call(clk, slp, w.maxRetries, func() error { return c.CloseSession(id) }) {
		convert()
	}
	return r
}

// activeBitsEqual compares the served session against the offline twin
// snapshot bit-for-bit.
func activeBitsEqual(info serve.SessionInfo, want core.PredictorState) bool {
	if info.Observed != want.Observed || len(info.Active) != len(want.Active) {
		return false
	}
	for i := range want.Active {
		if math.Float64bits(info.Active[i]) != math.Float64bits(want.Active[i]) {
			return false
		}
	}
	return true
}

// fleetRun is one gateway-fronted workload execution.
type fleetRun struct {
	results     []*fleetSessionResult
	elapsed     float64
	metricsText string
	churnEvents []string
	decisions   []gate.Decision
	maxReplicas int
	replicasEnd int
	store       fleetStoreTotals
}

// fleetStoreTotals sums the tiered-store counters scraped from every
// replica still alive at the end of the run (killed replicas take their
// counters with them).
type fleetStoreTotals struct {
	hot, cold, spills, hydrates, walReplayed int
}

// runFleetOnce boots replicas + gateway, drives the workload, applies the
// requested churn/kill/autoscale choreography, and tears everything down.
func runFleetOnce(clk clock.Clock, slp clock.Sleeper, m *core.Model, replicas int,
	w fleetWorkload, fo fleetOptions) (*fleetRun, error) {
	opts := serve.Options{QueueDepth: w.queue, Workers: w.workers, Interpreted: !w.compiled}
	if fo.serviceDelay > 0 {
		// Every observe batch stalls by the configured service delay, so a
		// replica's throughput is latency-bound: honest near-linear scaling
		// even when the host has fewer cores than replicas.
		opts.Fault = fault.New(w.seed, fault.Plan{fault.LabelDelay: {Prob: 1, Delay: fo.serviceDelay}})
	}
	fleet := gate.NewFleet(m, opts)
	defer fleet.Close()

	// Flight recording: one recorder per process (client, gate, every
	// replica), all sampling every trace, dumped to -flight-dir at the end
	// so homtrace can merge the whole fleet's view of the run.
	var flight struct {
		sync.Mutex
		recs []*obs.Recorder
	}
	newRec := func(proc string) *obs.Recorder {
		rec := obs.NewRecorder(obs.FlightConfig{Proc: proc, SampleOneIn: 1})
		flight.Lock()
		flight.recs = append(flight.recs, rec)
		flight.Unlock()
		return rec
	}
	var clientRec, gateRec *obs.Recorder
	if fo.flightDir != "" {
		if err := os.MkdirAll(fo.flightDir, 0o755); err != nil {
			return nil, err
		}
		clientRec = newRec("client")
		gateRec = newRec("gate")
		fleet.ReplicaOptions = func(id string, opts serve.Options) serve.Options {
			opts.Recorder = newRec(id)
			return opts
		}
	}
	if fo.spillDir != "" {
		// Tiered replicas: each gets its own spill subtree so segment and
		// WAL files never collide across the fleet. Chained after the
		// flight hook so both customizations compose.
		if err := os.MkdirAll(fo.spillDir, 0o755); err != nil {
			return nil, err
		}
		inner := fleet.ReplicaOptions
		fleet.ReplicaOptions = func(id string, opts serve.Options) serve.Options {
			if inner != nil {
				opts = inner(id, opts)
			}
			opts.Tier = serve.TierOptions{
				SpillDir:    filepath.Join(fo.spillDir, id),
				HotSessions: fo.hotSessions,
				WAL:         fo.wal,
			}
			return opts
		}
	}

	g := gate.New(gate.Config{HealthInterval: 250 * time.Millisecond, Recorder: gateRec})
	for i := 0; i < replicas; i++ {
		id, url, err := fleet.ScaleUp()
		if err != nil {
			return nil, err
		}
		if err := g.Join(id, url); err != nil {
			return nil, err
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: g.Handler()}
	go func() { _ = hs.Serve(l) }()
	defer func() { _ = hs.Close() }()
	base := "http://" + l.Addr().String()

	stop := make(chan struct{})
	defer close(stop)
	go g.HealthLoop(stop)

	run := &fleetRun{maxReplicas: replicas}
	var runMu sync.Mutex
	scaleMin := 0
	if fo.autoscale != "" {
		minR, maxR, err := parseBounds(fo.autoscale)
		if err != nil {
			return nil, err
		}
		scaleMin = minR
		a := gate.NewAutoscaler(g, fleet, gate.AutoscalerConfig{
			Min: minR, Max: maxR,
			HighQueue: 4, LowQueue: 1,
			UpAfter: 2, DownAfter: 3, Cooldown: 2,
			Interval: fo.scaleInterval,
		})
		go a.Run(stop, func(d gate.Decision, err error) {
			if err != nil || d.Action == "" {
				return
			}
			runMu.Lock()
			run.decisions = append(run.decisions, d)
			if n := len(g.Replicas()); n > run.maxReplicas {
				run.maxReplicas = n
			}
			runMu.Unlock()
		})
	}

	var progress atomic.Int64
	total := int64(w.sessions) * int64(w.records)
	loadDone := make(chan struct{})
	waitProgress := func(target int64) bool {
		for progress.Load() < target {
			select {
			case <-loadDone:
				// The workload ended (possibly short on failures): report
				// whether the target was actually reached rather than spin.
				return progress.Load() >= target
			default:
			}
			slp.Sleep(5 * time.Millisecond)
		}
		return true
	}
	record := func(ev string) {
		runMu.Lock()
		run.churnEvents = append(run.churnEvents, ev)
		runMu.Unlock()
	}
	var choreo sync.WaitGroup
	if fo.churn {
		choreo.Add(1)
		go func() {
			defer choreo.Done()
			if !waitProgress(total / 3) {
				return
			}
			id, url, err := fleet.ScaleUp()
			if err == nil {
				err = g.Join(id, url)
			}
			if err != nil {
				record("join failed: " + err.Error())
				return
			}
			record("join " + id + " at 1/3: rebalance migrated the ring delta")
			if !waitProgress(2 * total / 3) {
				return
			}
			victim := firstHealthy(g)
			if victim == "" {
				return
			}
			if err := g.Leave(victim); err != nil {
				record("leave " + victim + " failed: " + err.Error())
				return
			}
			_ = fleet.ScaleDown(victim)
			record("leave " + victim + " at 2/3: drained and migrated off")
		}()
	}
	if fo.kill {
		choreo.Add(1)
		go func() {
			defer choreo.Done()
			if !waitProgress(total / 2) {
				return
			}
			victim := firstHealthy(g)
			if victim == "" {
				return
			}
			if err := fleet.Kill(victim); err != nil {
				record("kill " + victim + " failed: " + err.Error())
				return
			}
			record("kill " + victim + " at 1/2: crash, sessions recreated by clients")
		}()
	}

	root := rng.New(w.seed)
	seeds := make([]int64, w.sessions)
	for i := range seeds {
		seeds[i] = root.Int63()
	}
	var verifyModel *core.Model
	if fo.verify {
		verifyModel = m
	}
	start := clk()
	run.results = make([]*fleetSessionResult, w.sessions)
	var wg sync.WaitGroup
	for i := 0; i < w.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run.results[i] = runFleetSession(clk, slp, base, w, seeds[i], verifyModel, fo.kill, clientRec, &progress)
		}(i)
	}
	wg.Wait()
	run.elapsed = clk().Sub(start).Seconds()
	close(loadDone)
	choreo.Wait()

	// With the load gone the signals run cold; give the autoscaler time to
	// shrink back to Min so the committed run shows the full cycle.
	if scaleMin > 0 {
		deadline := clk().Add(20 * time.Second)
		for len(g.Replicas()) > scaleMin && clk().Before(deadline) {
			slp.Sleep(100 * time.Millisecond)
		}
	}

	var buf bytes.Buffer
	g.Registry().WriteText(&buf)
	run.metricsText = buf.String()
	if fo.spillDir != "" {
		for _, id := range fleet.IDs() {
			url, ok := fleet.URL(id)
			if !ok {
				continue
			}
			text, err := serve.NewClient(url, nil).Metrics()
			if err != nil {
				continue
			}
			mv := func(name string) int {
				v, _ := serve.MetricValue(text, name)
				return int(v)
			}
			run.store.hot += mv("hom_sessions_hot")
			run.store.cold += mv("hom_sessions_cold")
			run.store.spills += mv("hom_spill_total")
			run.store.hydrates += mv("hom_hydrate_total")
			run.store.walReplayed += mv("hom_wal_replayed_records_total")
		}
	}
	run.replicasEnd = len(g.Replicas())
	if run.replicasEnd > run.maxReplicas {
		run.maxReplicas = run.replicasEnd
	}

	if fo.flightDir != "" {
		flight.Lock()
		recs := append([]*obs.Recorder(nil), flight.recs...)
		flight.Unlock()
		for _, rec := range recs {
			if err := writeFlightDump(fo.flightDir, rec); err != nil {
				return nil, err
			}
		}
	}
	return run, nil
}

// writeFlightDump persists one process's end-of-run ring snapshot.
func writeFlightDump(dir string, rec *obs.Recorder) error {
	f, err := os.Create(filepath.Join(dir, rec.Proc()+".json"))
	if err != nil {
		return err
	}
	if err := rec.WriteDump(f, "end_of_run"); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// firstHealthy returns the lowest-id healthy replica, or "".
func firstHealthy(g *gate.Gateway) string {
	for _, ri := range g.Replicas() {
		if ri.Healthy {
			return ri.ID
		}
	}
	return ""
}

// fleetSummary is the BENCH_gate.json schema.
type fleetSummary struct {
	Config struct {
		Replicas          int     `json:"replicas"`
		Sessions          int     `json:"sessions"`
		RecordsPerSession int     `json:"records_per_session"`
		Batch             int     `json:"batch"`
		Stream            string  `json:"stream"`
		Seed              int64   `json:"seed"`
		ServiceDelayMS    float64 `json:"service_delay_ms"`
		Churn             bool    `json:"churn"`
		Kill              bool    `json:"kill"`
		Autoscale         string  `json:"autoscale"`
		GoMaxProcs        int     `json:"gomaxprocs"`
	} `json:"config"`
	Requests struct {
		Attempted  int `json:"attempted"`
		Succeeded  int `json:"succeeded"`
		Retried429 int `json:"retried_429"`
		Failed     int `json:"failed"`
		LostEvents int `json:"lost_events"`
	} `json:"requests"`
	Records           int     `json:"records"`
	PredictionErrors  int     `json:"prediction_errors"`
	ErrorRate         float64 `json:"error_rate"`
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	RequestsPerSecond float64 `json:"requests_per_second"`
	RecordsPerSecond  float64 `json:"records_per_second"`
	LatencyMS         struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Gate struct {
		MigrationsTotal   int `json:"migrations_total"`
		MigrationFailures int `json:"migration_failures"`
		RebalanceMoved    int `json:"rebalance_moved"`
		ParkedTotal       int `json:"parked_total"`
		SessionsLost      int `json:"sessions_lost"`
		ReplicasEnd       int `json:"replicas_end"`
	} `json:"gate"`
	Store struct {
		Enabled      bool `json:"enabled"`
		HotSessions  int  `json:"hot_sessions"`
		WAL          bool `json:"wal"`
		HotEnd       int  `json:"hot_end"`
		ColdEnd      int  `json:"cold_end"`
		SpillTotal   int  `json:"spill_total"`
		HydrateTotal int  `json:"hydrate_total"`
		WALReplayed  int  `json:"wal_replayed_records"`
	} `json:"store"`
	Verify struct {
		Checked      bool `json:"checked"`
		Sessions     int  `json:"sessions"`
		BitIdentical bool `json:"bit_identical"`
	} `json:"verify"`
	Autoscale struct {
		Enabled     bool     `json:"enabled"`
		MaxReplicas int      `json:"max_replicas"`
		Decisions   []string `json:"decisions"`
	} `json:"autoscale"`
	ChurnEvents []string     `json:"churn_events,omitempty"`
	Sweep       []sweepPoint `json:"sweep,omitempty"`
}

// sweepPoint is one replica-count measurement of the scaling sweep.
type sweepPoint struct {
	Replicas         int     `json:"replicas"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	RecordsPerSecond float64 `json:"records_per_second"`
	Speedup          float64 `json:"speedup"`
}

// fleetSummarize folds one run into the JSON schema.
func fleetSummarize(run *fleetRun, replicas int, w fleetWorkload, fo fleetOptions) *fleetSummary {
	s := &fleetSummary{}
	s.Config.Replicas = replicas
	s.Config.Sessions = w.sessions
	s.Config.RecordsPerSession = w.records
	s.Config.Batch = w.batch
	s.Config.Stream = w.stream
	s.Config.Seed = w.seed
	s.Config.ServiceDelayMS = float64(fo.serviceDelay) / float64(time.Millisecond)
	s.Config.Churn = fo.churn
	s.Config.Kill = fo.kill
	s.Config.Autoscale = fo.autoscale
	s.Config.GoMaxProcs = runtime.GOMAXPROCS(0)

	var lats []float64
	s.Verify.BitIdentical = true
	for _, r := range run.results {
		s.Requests.Attempted += r.attempted
		s.Requests.Succeeded += r.succeeded
		s.Requests.Retried429 += r.retried
		s.Requests.Failed += r.failed
		s.Requests.LostEvents += r.lost
		s.Records += r.records
		s.PredictionErrors += r.predErrors
		lats = append(lats, r.latencies...)
		if r.verified {
			s.Verify.Checked = true
			s.Verify.Sessions++
			if !r.bitIdentical {
				s.Verify.BitIdentical = false
			}
		}
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "homload: fleet session error: %v\n", r.err)
		}
	}
	if !s.Verify.Checked {
		s.Verify.BitIdentical = false
	}
	if s.Records > 0 {
		s.ErrorRate = float64(s.PredictionErrors) / float64(s.Records)
	}
	s.ElapsedSeconds = run.elapsed
	if run.elapsed > 0 {
		s.RequestsPerSecond = float64(s.Requests.Succeeded) / run.elapsed
		s.RecordsPerSecond = float64(s.Records) / run.elapsed
	}
	sort.Float64s(lats)
	s.LatencyMS.P50 = percentileMS(lats, 0.50)
	s.LatencyMS.P90 = percentileMS(lats, 0.90)
	s.LatencyMS.P99 = percentileMS(lats, 0.99)
	if n := len(lats); n > 0 {
		s.LatencyMS.Max = lats[n-1] * 1000
	}

	gv := func(name string) int {
		v, _ := serve.MetricValue(run.metricsText, name)
		return int(v)
	}
	s.Gate.MigrationsTotal = gv("hom_gate_migrations_total")
	s.Gate.MigrationFailures = gv("hom_gate_migration_failures_total")
	s.Gate.RebalanceMoved = gv("hom_gate_rebalance_moved")
	s.Gate.ParkedTotal = gv("hom_gate_parked_total")
	s.Gate.SessionsLost = gv("hom_gate_sessions_lost_total")
	s.Gate.ReplicasEnd = run.replicasEnd

	s.Store.Enabled = fo.spillDir != ""
	s.Store.HotSessions = fo.hotSessions
	s.Store.WAL = fo.wal
	s.Store.HotEnd = run.store.hot
	s.Store.ColdEnd = run.store.cold
	s.Store.SpillTotal = run.store.spills
	s.Store.HydrateTotal = run.store.hydrates
	s.Store.WALReplayed = run.store.walReplayed

	s.Autoscale.Enabled = fo.autoscale != ""
	s.Autoscale.MaxReplicas = run.maxReplicas
	for _, d := range run.decisions {
		s.Autoscale.Decisions = append(s.Autoscale.Decisions, d.Action+" "+d.Replica+": "+d.Reason)
	}
	s.ChurnEvents = run.churnEvents
	return s
}

// runFleet is the fleet-mode entry point: the main run (or, with a sweep,
// one run per replica count) and the BENCH_gate.json verdict. It exits
// the process like main's single-server path does.
func runFleet(clk clock.Clock, slp clock.Sleeper, modelPath, out string, w fleetWorkload, fo fleetOptions) {
	m, err := dataio.LoadModel(modelPath)
	if err != nil {
		fail(err)
	}

	var sum *fleetSummary
	if len(fo.sweep) > 0 {
		// Sweep points run the identical workload at each replica count;
		// churn/kill/autoscale are disabled so the scaling curve measures
		// routing fan-out alone.
		plain := fo
		plain.churn, plain.kill, plain.autoscale = false, false, ""
		var points []sweepPoint
		var base float64
		for i, n := range fo.sweep {
			run, err := runFleetOnce(clk, slp, m, n, w, plain)
			if err != nil {
				fail(err)
			}
			point := fleetSummarize(run, n, w, plain)
			if sum == nil || n >= sum.Config.Replicas {
				sum = point
			}
			if i == 0 {
				base = point.RecordsPerSecond
			}
			sp := sweepPoint{Replicas: n, ElapsedSeconds: point.ElapsedSeconds, RecordsPerSecond: point.RecordsPerSecond}
			if base > 0 {
				sp.Speedup = point.RecordsPerSecond / base
			}
			points = append(points, sp)
			fmt.Printf("homload: fleet sweep %d replicas: %.0f records/s (%.2fx)\n", n, sp.RecordsPerSecond, sp.Speedup)
		}
		sum.Sweep = points
	} else {
		run, err := runFleetOnce(clk, slp, m, fo.replicas, w, fo)
		if err != nil {
			fail(err)
		}
		sum = fleetSummarize(run, fo.replicas, w, fo)
	}

	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("homload: fleet %d sessions x %d records: %.0f records/s, %d migrations, %d lost events, verify=%v -> %s\n",
		w.sessions, w.records, sum.RecordsPerSecond, sum.Gate.MigrationsTotal, sum.Requests.LostEvents, sum.Verify.BitIdentical, out)

	accounted := sum.Requests.Succeeded + sum.Requests.Retried429 + sum.Requests.Failed + sum.Requests.LostEvents
	switch {
	case sum.Requests.Failed > 0 || sum.Requests.Attempted != accounted:
		fmt.Fprintf(os.Stderr, "homload: fleet request accounting: %+v\n", sum.Requests)
		os.Exit(1)
	case fo.verify && !sum.Verify.BitIdentical:
		fmt.Fprintln(os.Stderr, "homload: served state diverged from the offline twin")
		os.Exit(1)
	}
}
