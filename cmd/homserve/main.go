// Command homserve serves a persisted high-order model as a concurrent
// online-prediction HTTP service. Each client stream opens a session that
// owns its active-probability state; classify and observe traffic flows
// through a bounded queue with 429 backpressure; /metrics exposes
// Prometheus-format counters. SIGINT/SIGTERM drain in-flight work before
// exit.
//
// Usage:
//
//	homserve -model model.gob [-addr :8080] [-queue 256] [-workers N]
//	         [-micro-batch 8] [-ttl 15m] [-max-sessions 10000]
//	         [-request-timeout 10s] [-shed-depth 0]
//	         [-debug-addr 127.0.0.1:6060]
//	         [-flight-sample N] [-flight-slots 4096] [-flight-dir dumps/]
//	         [-spill-dir sessions/ -hot-sessions 1024 -wal]
//
// -spill-dir enables the tiered session store: a bounded in-memory hot
// set over on-disk snapshot segments. Sessions evicted by pressure or TTL
// spill to disk and rehydrate transparently on their next request, so the
// session population is bounded by disk, not RAM. With -wal every
// acknowledged observe batch is fsync'd to a write-ahead label log before
// the response, and replayed on restart — acknowledged labels survive
// kill -9.
//
// -flight-sample enables the always-on flight recorder: spans for ~1 in N
// traces land in a fixed-size in-memory ring, dumpable on demand via
// POST /admin/flightdump and automatically on deadline-expiry, shed, and
// injected faults (written to -flight-dir when set). See cmd/homtrace for
// merging dumps across the fleet.
//
// -debug-addr starts a second listener with net/http/pprof profiles under
// /debug/pprof/ and expvar runtime counters under /debug/vars. It is off
// by default and should be bound to loopback: the profile endpoints are
// diagnostic surface, not part of the serving API.
//
// API:
//
//	POST   /v1/sessions                  open a session
//	GET    /v1/sessions                  list sessions (introspection)
//	GET    /v1/sessions/{id}             session info (active probabilities, explained rate)
//	GET    /v1/sessions/{id}/state       predictor snapshot
//	DELETE /v1/sessions/{id}             close a session
//	POST   /v1/sessions/{id}/classify    classify a batch of records
//	POST   /v1/sessions/{id}/observe     feed labeled records (cue stream)
//	GET    /metrics                      Prometheus text metrics
//	GET    /healthz                      liveness
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"highorder/internal/dataio"
	"highorder/internal/obs"
	"highorder/internal/serve"
)

func main() {
	modelPath := flag.String("model", "model.gob", "persisted high-order model")
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 0, "bounded work-queue depth (0 = default 256)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	microBatch := flag.Int("micro-batch", 0, "max queued tasks one worker wakeup drains (0 = default 8)")
	ttl := flag.Duration("ttl", 15*time.Minute, "idle session time-to-live")
	maxSessions := flag.Int("max-sessions", 0, "live session limit (0 = default 10000)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request queue deadline; expired tasks answer 503 without running (0 = default 10s)")
	shedDepth := flag.Int("shed-depth", 0, "queue depth at which new work is shed with 503 before the queue is full (0 = disabled)")
	debugAddr := flag.String("debug-addr", "", "optional listen address for /debug/pprof/* and /debug/vars (off when empty)")
	flightSample := flag.Uint64("flight-sample", 0, "flight recorder: keep ~1 in N traces (0 = recorder off, 1 = every trace)")
	flightSlots := flag.Int("flight-slots", 0, "flight recorder ring capacity in spans (0 = default 4096)")
	flightDir := flag.String("flight-dir", "", "write fault-triggered flight dumps into this directory (with -flight-sample)")
	flightProc := flag.String("flight-proc", "homserve", "process name stamped on flight dumps")
	spillDir := flag.String("spill-dir", "", "tiered session store: directory for disk spill segments (empty = tiering off, sessions die with the process)")
	hotSessions := flag.Int("hot-sessions", 0, "tiered session store: in-memory hot-set bound (0 = default 1024; needs -spill-dir)")
	wal := flag.Bool("wal", false, "tiered session store: fsync a write-ahead label log so acknowledged observes survive a crash (needs -spill-dir)")
	compiled := flag.Bool("compiled", true, "serve sessions on the compiled classify hot path when the model compiles (false forces the interpreted predictor, for A/B comparison)")
	flag.Parse()

	m, err := dataio.LoadModel(*modelPath)
	if err != nil {
		fail(err)
	}
	var rec *obs.Recorder
	if *flightSample > 0 {
		rec = obs.NewRecorder(obs.FlightConfig{
			Proc:        *flightProc,
			Slots:       *flightSlots,
			SampleOneIn: *flightSample,
		})
		if *flightDir != "" {
			if err := os.MkdirAll(*flightDir, 0o755); err != nil {
				fail(err)
			}
			dir := *flightDir
			rec.OnTrigger(func(d obs.FlightDump) { writeTriggeredDump(dir, d) })
		}
		fmt.Printf("homserve: flight recorder on (1 in %d, %s)\n", *flightSample, *flightProc)
	}
	s, err := serve.NewTiered(m, serve.Options{
		QueueDepth:     *queue,
		Workers:        *workers,
		MicroBatch:     *microBatch,
		SessionTTL:     *ttl,
		MaxSessions:    *maxSessions,
		RequestTimeout: *requestTimeout,
		ShedDepth:      *shedDepth,
		Recorder:       rec,
		Interpreted:    !*compiled,
		Tier: serve.TierOptions{
			SpillDir:    *spillDir,
			HotSessions: *hotSessions,
			WAL:         *wal,
		},
	})
	if err != nil {
		fail(err)
	}
	if *spillDir != "" {
		fmt.Printf("homserve: tiered sessions on (spill %s, hot %d, wal %v)\n", *spillDir, *hotSessions, *wal)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail(err)
		}
		go serveDebug(dl)
		fmt.Printf("homserve: debug endpoints (pprof, expvar) on %s\n", dl.Addr())
	}

	path := "interpreted"
	if s.Compiled() {
		path = "compiled"
	}
	fmt.Printf("homserve: serving %d-concept model from %s on %s (%s classify path)\n", m.NumConcepts(), *modelPath, l.Addr(), path)
	if err := s.Serve(ctx, l); err != nil {
		fail(err)
	}
	fmt.Println("homserve: drained, bye")
}

// serveDebug exposes the diagnostic endpoints on their own mux so nothing
// registers on http.DefaultServeMux and nothing leaks onto the API
// listener. Best-effort: debug serving errors never take the server down.
func serveDebug(l net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if err := http.Serve(l, mux); err != nil {
		fmt.Fprintf(os.Stderr, "homserve: debug listener: %v\n", err)
	}
}

// writeTriggeredDump persists a fault-triggered flight dump. Best-effort:
// a full disk must never take the serving path down.
func writeTriggeredDump(dir string, d obs.FlightDump) {
	name := fmt.Sprintf("%s-%s-%d.json", d.Proc, d.Reason, d.CapturedNS)
	b, err := json.MarshalIndent(d, "", " ")
	if err == nil {
		err = os.WriteFile(filepath.Join(dir, name), b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "homserve: flight dump: %v\n", err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "homserve: %v\n", err)
	os.Exit(1)
}
