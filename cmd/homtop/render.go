package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"highorder/internal/clock"
	"highorder/internal/gate"
	"highorder/internal/serve"
)

// snapshot is one poll of the whole fleet: the gateway's exposition, its
// replica listing, and every reachable replica's exposition.
type snapshot struct {
	at       time.Time
	gateText string
	replicas []gate.ReplicaInfo
	repText  map[string]string // replica id -> exposition ("" when down)
}

// fetch polls the gateway and every replica it advertises.
func fetch(clk clock.Clock, base string) (*snapshot, error) {
	s := &snapshot{at: clk.OrWall()(), repText: map[string]string{}}
	text, err := httpGet(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("gateway metrics: %w", err)
	}
	s.gateText = text
	body, err := httpGet(base + "/admin/replicas")
	if err != nil {
		return nil, fmt.Errorf("replica listing: %w", err)
	}
	if err := json.Unmarshal([]byte(body), &s.replicas); err != nil {
		return nil, fmt.Errorf("replica listing: %w", err)
	}
	for _, r := range s.replicas {
		if text, err := httpGet(r.URL + "/metrics"); err == nil {
			s.repText[r.ID] = text
		}
	}
	return s, nil
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return sb.String(), nil
}

// sumMetric sums every series of a family (labeled or not) in exposition
// text — e.g. homserve_requests_total across endpoint/code.
func sumMetric(text, name string) float64 {
	var sum float64
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name)
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(rest, " "):
			// unlabeled
		case strings.HasPrefix(rest, "{"):
			end := strings.Index(rest, "} ")
			if end < 0 {
				continue
			}
			rest = rest[end+1:]
		default:
			continue // a longer family name sharing the prefix
		}
		if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
			sum += v
		}
	}
	return sum
}

// labeledValue extracts one series value by exact label match.
func labeledValue(text, name string, labels map[string]string) (float64, bool) {
	series := name + renderLabels(labels) + " "
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			return v, err == nil
		}
	}
	return 0, false
}

func renderLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ANSI styling, disabled wholesale when color is off.
type style struct{ on bool }

func (s style) paint(code, txt string) string {
	if !s.on {
		return txt
	}
	return "\x1b[" + code + "m" + txt + "\x1b[0m"
}

func (s style) green(t string) string { return s.paint("32", t) }
func (s style) red(t string) string   { return s.paint("31", t) }
func (s style) bold(t string) string  { return s.paint("1", t) }
func (s style) dim(t string) string   { return s.paint("2", t) }

// render draws one dashboard frame from the current snapshot, using prev
// (the previous poll) for counter-delta rates. Pure: all inputs explicit,
// deterministic output, so CI snapshots it byte-for-byte.
func render(prev, cur *snapshot, elapsed time.Duration, color bool) string {
	st := style{on: color}
	var b strings.Builder

	gv := func(name string) float64 {
		v, _ := serve.MetricValue(cur.gateText, name)
		return v
	}
	up, _ := labeledValue(cur.gateText, "hom_gate_autoscale_total", map[string]string{"direction": "up"})
	down, _ := labeledValue(cur.gateText, "hom_gate_autoscale_total", map[string]string{"direction": "down"})
	routeP99 := "-"
	if qs, ok := serve.HistogramQuantiles(cur.gateText, "hom_gate_route_seconds", nil, 0.99); ok {
		routeP99 = fmtSeconds(qs[0])
	}

	fmt.Fprintf(&b, "%s  replicas %s  sessions %s  route p99 %s\n",
		st.bold("homtop"),
		fmt.Sprintf("%d/%d", int(gv("hom_gate_replicas_healthy")), int(gv("hom_gate_replicas"))),
		fmt.Sprintf("%d", int(gv("hom_gate_sessions"))),
		routeP99)
	fmt.Fprintf(&b, "migrations %d (failed %d)  parked %d  lost %d  autoscale +%d/-%d\n\n",
		int(gv("hom_gate_migrations_total")), int(gv("hom_gate_migration_failures_total")),
		int(gv("hom_gate_parked_total")), int(gv("hom_gate_sessions_lost_total")),
		int(up), int(down))

	fmt.Fprintf(&b, "%s\n", st.dim(fmt.Sprintf("%-8s %-8s %8s %8s %8s %8s %8s %8s",
		"REPLICA", "HEALTH", "SESSIONS", "LIVE", "QPS", "QUEUE", "P99", "SHED")))

	reps := append([]gate.ReplicaInfo(nil), cur.replicas...)
	sort.Slice(reps, func(i, j int) bool { return reps[i].ID < reps[j].ID })
	for _, r := range reps {
		// Pad before painting: ANSI escapes would otherwise count against
		// the column width.
		health := fmt.Sprintf("%-8s", "up")
		if r.Healthy {
			health = st.green(health)
		} else {
			health = st.red(fmt.Sprintf("%-8s", "DOWN"))
		}
		text := cur.repText[r.ID]
		if text == "" {
			fmt.Fprintf(&b, "%-8s %s %8d %8s %8s %8s %8s %8s\n",
				r.ID, health, r.Sessions, "-", "-", "-", "-", "-")
			continue
		}
		live, _ := serve.MetricValue(text, "homserve_sessions_live")
		queue, _ := serve.MetricValue(text, "homserve_queue_depth")
		shed, _ := serve.MetricValue(text, "hom_shed_total")
		qps := "-"
		if prev != nil && elapsed > 0 {
			if ptext := prev.repText[r.ID]; ptext != "" {
				d := sumMetric(text, "homserve_requests_total") - sumMetric(ptext, "homserve_requests_total")
				qps = fmt.Sprintf("%.1f", d/elapsed.Seconds())
			}
		}
		p99 := "-"
		if qs, ok := serve.HistogramQuantiles(text, "homserve_request_seconds", nil, 0.99); ok {
			p99 = fmtSeconds(qs[0])
		}
		fmt.Fprintf(&b, "%-8s %s %8d %8d %8s %8d %8s %8d\n",
			r.ID, health, r.Sessions, int(live), qps, int(queue), p99, int(shed))
	}
	return b.String()
}

// fmtSeconds renders a latency in the friendliest unit.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
