// Command homtop is a live terminal dashboard for a homgate fleet: it
// polls the gateway's /metrics and /admin/replicas plus every replica's
// /metrics and renders per-replica QPS, queue depth, p99 latency, session
// counts, and the gateway's migration/autoscaler counters, refreshing in
// place with ANSI escapes. stdlib only.
//
// Usage:
//
//	homtop -gate http://127.0.0.1:9000 [-interval 1s] [-once] [-no-color]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"highorder/internal/clock"
)

func main() {
	gate := flag.String("gate", "http://127.0.0.1:9000", "gateway base URL")
	interval := flag.Duration("interval", time.Second, "poll period")
	once := flag.Bool("once", false, "print one frame and exit (no screen control)")
	noColor := flag.Bool("no-color", false, "disable ANSI colors")
	flag.Parse()

	// Interactive pacing: the real clock and sleeper are fine here, but the
	// injectable forms keep the loop testable and the linter honest.
	clk := clock.Clock(nil).OrWall()
	slp := clock.Sleeper(nil).OrReal()
	var prev *snapshot
	for {
		cur, err := fetch(clk, *gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "homtop:", err)
			if *once {
				os.Exit(1)
			}
			slp.Sleep(*interval)
			continue
		}
		elapsed := *interval
		if prev != nil {
			elapsed = cur.at.Sub(prev.at)
		}
		frame := render(prev, cur, elapsed, !*noColor)
		if *once {
			fmt.Print(frame)
			return
		}
		// Clear screen, home cursor, repaint.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		prev = cur
		slp.Sleep(*interval)
	}
}
