package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"highorder/internal/gate"
)

const gateExpo = `hom_gate_replicas 3
hom_gate_replicas_healthy 2
hom_gate_sessions 12
hom_gate_parked_total 4
hom_gate_migrations_total 7
hom_gate_migration_failures_total 1
hom_gate_sessions_lost_total 2
hom_gate_autoscale_total{direction="up"} 3
hom_gate_autoscale_total{direction="down"} 1
hom_gate_route_seconds_bucket{le="0.001"} 90
hom_gate_route_seconds_bucket{le="0.01"} 99
hom_gate_route_seconds_bucket{le="+Inf"} 100
hom_gate_route_seconds_sum 0.8
hom_gate_route_seconds_count 100
`

const r0Expo = `homserve_sessions_live 5
homserve_queue_depth 3
hom_shed_total 2
homserve_requests_total{endpoint="classify",code="200"} 300
homserve_requests_total{endpoint="observe",code="200"} 100
homserve_request_seconds_bucket{le="0.005"} 50
homserve_request_seconds_bucket{le="0.05"} 99
homserve_request_seconds_bucket{le="+Inf"} 100
homserve_request_seconds_sum 1.2
homserve_request_seconds_count 100
`

const r0Prev = `homserve_sessions_live 5
homserve_queue_depth 1
hom_shed_total 2
homserve_requests_total{endpoint="classify",code="200"} 200
homserve_requests_total{endpoint="observe",code="200"} 80
`

// r-2 is reachable but freshly started: no prev poll, empty histogram.
const r2Expo = `homserve_sessions_live 1
homserve_queue_depth 0
hom_shed_total 0
homserve_requests_total{endpoint="classify",code="200"} 40
`

func testSnapshots() (prev, cur *snapshot) {
	replicas := []gate.ReplicaInfo{
		{ID: "r-0", URL: "http://r0", Healthy: true, Sessions: 5},
		{ID: "r-1", URL: "http://r1", Healthy: false, Sessions: 0},
		{ID: "r-2", URL: "http://r2", Healthy: true, Sessions: 7},
	}
	prev = &snapshot{
		gateText: gateExpo,
		replicas: replicas,
		repText:  map[string]string{"r-0": r0Prev},
	}
	cur = &snapshot{
		gateText: gateExpo,
		replicas: replicas,
		repText:  map[string]string{"r-0": r0Expo, "r-2": r2Expo},
	}
	return prev, cur
}

// TestRenderGoldenFrame pins the no-color dashboard byte-for-byte: canned
// expositions in, exact frame out. Regenerate with UPDATE_GOLDEN=1.
func TestRenderGoldenFrame(t *testing.T) {
	prev, cur := testSnapshots()
	got := render(prev, cur, 2*time.Second, false)

	golden := filepath.Join("testdata", "frame.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("frame drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRenderFirstFrame covers the no-previous-poll path: rates render as
// dashes, nothing panics on missing metrics.
func TestRenderFirstFrame(t *testing.T) {
	_, cur := testSnapshots()
	got := render(nil, cur, time.Second, false)
	if got == "" {
		t.Fatal("empty frame")
	}
	for _, want := range []string{"replicas 2/3", "sessions 12", "DOWN", "r-2"} {
		if !containsLine(got, want) {
			t.Fatalf("frame missing %q:\n%s", want, got)
		}
	}
}

// TestRenderColorAlignment checks that ANSI codes don't shift columns: the
// color and no-color frames must match after stripping escapes.
func TestRenderColorAlignment(t *testing.T) {
	prev, cur := testSnapshots()
	plain := render(prev, cur, 2*time.Second, false)
	colored := render(prev, cur, 2*time.Second, true)
	if stripped := stripANSI(colored); stripped != plain {
		t.Fatalf("color frame misaligned after stripping escapes:\n--- stripped ---\n%s--- plain ---\n%s", stripped, plain)
	}
}

func containsLine(s, sub string) bool {
	return len(s) > 0 && (len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func stripANSI(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == 0x1b && i+1 < len(s) && s[i+1] == '[' {
			j := i + 2
			for j < len(s) && s[j] != 'm' {
				j++
			}
			i = j
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

func TestSumMetric(t *testing.T) {
	if got := sumMetric(r0Expo, "homserve_requests_total"); got != 400 {
		t.Fatalf("sumMetric = %v, want 400", got)
	}
	// Must not absorb longer family names sharing the prefix.
	if got := sumMetric(gateExpo, "hom_gate_route_seconds"); got != 0 {
		t.Fatalf("prefix family leaked into sum: %v", got)
	}
	if got := sumMetric("m 1\nm{a=\"b\"} 2\n", "m"); got != 3 {
		t.Fatalf("labeled+unlabeled sum = %v, want 3", got)
	}
}
