package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"highorder/internal/obs"
)

// span is one dumped span plus its process of origin and the process's
// alignment offset applied at render time.
type span struct {
	obs.FlightSpanRecord
	proc string
}

// merged is the cross-process merge: every span, the process list, and
// per-process clock offsets (nanoseconds to add to that process's
// timestamps).
type merged struct {
	spans  []span
	procs  []string         // sorted process names
	offset map[string]int64 // proc -> ns shift
}

// dumpPaths lists the *.json dumps under dir, sorted.
func dumpPaths(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.json dumps in %s", dir)
	}
	return paths, nil
}

// loadDumps reads flight dumps from disk.
func loadDumps(paths []string) ([]obs.FlightDump, error) {
	var dumps []obs.FlightDump
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var d obs.FlightDump
		if err := json.Unmarshal(b, &d); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		dumps = append(dumps, d)
	}
	return dumps, nil
}

// merge combines dumps into one aligned view. Duplicate span ids (the
// same ring snapshotted twice) keep the first occurrence.
func merge(dumps []obs.FlightDump) *merged {
	m := &merged{offset: map[string]int64{}}
	seen := map[string]bool{}
	procSet := map[string]bool{}
	for _, d := range dumps {
		proc := d.Proc
		if proc == "" {
			proc = "?"
		}
		procSet[proc] = true
		for _, s := range d.Spans {
			if seen[s.Span] {
				continue
			}
			seen[s.Span] = true
			m.spans = append(m.spans, span{FlightSpanRecord: s, proc: proc})
		}
	}
	for p := range procSet {
		m.procs = append(m.procs, p)
		m.offset[p] = 0
	}
	sort.Strings(m.procs)
	sort.Slice(m.spans, func(i, j int) bool {
		if m.spans[i].StartNS != m.spans[j].StartNS {
			return m.spans[i].StartNS < m.spans[j].StartNS
		}
		return m.spans[i].Span < m.spans[j].Span
	})
	m.align()
	return m
}

// align shifts process clocks so no child span starts before its parent on
// a cross-process edge. Offsets only ever grow (a process is shifted
// forward by its worst observed deficit), and the relaxation loop runs
// until stable — processes synced by a shared clock (tests) or one
// machine's wall clock keep offset 0.
func (m *merged) align() {
	bySpan := map[string]span{}
	for _, s := range m.spans {
		bySpan[s.Span] = s
	}
	for iter := 0; iter < len(m.procs)+1; iter++ {
		changed := false
		for _, child := range m.spans {
			if child.Parent == "" {
				continue
			}
			parent, ok := bySpan[child.Parent]
			if !ok || parent.proc == child.proc {
				continue
			}
			deficit := (parent.StartNS + m.offset[parent.proc]) - (child.StartNS + m.offset[child.proc])
			if deficit > 0 {
				m.offset[child.proc] += deficit
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// aligned returns the span's clock-aligned start.
func (m *merged) aligned(s span) int64 { return s.StartNS + m.offset[s.proc] }

// traceCount counts distinct trace ids.
func (m *merged) traceCount() int {
	ids := map[string]bool{}
	for _, s := range m.spans {
		ids[s.Trace] = true
	}
	return len(ids)
}

// keepTraces filters to the spans of traces for which keep reported true
// on at least one span — queries select whole traces, never lone spans.
func (m *merged) keepTraces(keep func(span) bool) *merged {
	hit := map[string]bool{}
	for _, s := range m.spans {
		if keep(s) {
			hit[s.Trace] = true
		}
	}
	out := &merged{procs: m.procs, offset: m.offset}
	for _, s := range m.spans {
		if hit[s.Trace] {
			out.spans = append(out.spans, s)
		}
	}
	return out
}

// grep filters traces by a key=value query.
func (m *merged) grep(q string) (*merged, error) {
	key, val, ok := strings.Cut(q, "=")
	if !ok {
		return nil, fmt.Errorf("bad -grep %q: want key=value", q)
	}
	var field func(span) string
	switch key {
	case "session":
		field = func(s span) string { return s.Session }
	case "name":
		field = func(s span) string { return s.Name }
	case "trace":
		field = func(s span) string { return s.Trace }
	case "proc":
		field = func(s span) string { return s.proc }
	default:
		return nil, fmt.Errorf("bad -grep key %q: want session, name, trace, or proc", key)
	}
	return m.keepTraces(func(s span) bool { return field(s) == val }), nil
}

// slowerThan keeps traces containing at least one span of duration >= d.
func (m *merged) slowerThan(d time.Duration) *merged {
	return m.keepTraces(func(s span) bool { return s.DurNS >= int64(d) })
}

// findTraceWith reports a trace id whose span set contains every name.
func (m *merged) findTraceWith(names []string) (string, bool) {
	byTrace := map[string]map[string]bool{}
	for _, s := range m.spans {
		set, ok := byTrace[s.Trace]
		if !ok {
			set = map[string]bool{}
			byTrace[s.Trace] = set
		}
		set[s.Name] = true
	}
	var ids []string
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		all := true
		for _, n := range names {
			if !byTrace[id][n] {
				all = false
			}
		}
		if all {
			return id, true
		}
	}
	return "", false
}

// chromeEvent is one Chrome trace-event JSON object (the subset Perfetto
// renders: X complete events and M metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts,omitempty"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// writeChrome renders the merged spans as a Chrome trace: one pid per
// process, spans packed greedily onto tids so overlapping spans of one
// process get distinct lanes, timestamps normalized to the earliest
// aligned span.
func (m *merged) writeChrome(w io.Writer) error {
	pid := map[string]int{}
	events := make([]chromeEvent, 0, len(m.spans)+len(m.procs))
	for i, p := range m.procs {
		pid[p] = i + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": p},
		})
	}
	var t0 int64
	for i, s := range m.spans {
		if at := m.aligned(s); i == 0 || at < t0 {
			t0 = at
		}
	}
	// laneEnd[proc] tracks each lane's occupied-until time for greedy
	// lane assignment.
	laneEnd := map[string][]int64{}
	for _, s := range m.spans {
		start := m.aligned(s)
		end := start + s.DurNS
		lanes := laneEnd[s.proc]
		tid := -1
		for li, le := range lanes {
			if le <= start {
				tid = li
				break
			}
		}
		if tid == -1 {
			tid = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[tid] = end
		laneEnd[s.proc] = lanes

		args := map[string]any{"trace": s.Trace, "span": s.Span}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		if s.Session != "" {
			args["session"] = s.Session
		}
		if s.Arg != 0 {
			args["arg"] = s.Arg
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(start-t0) / 1e3,
			Dur: float64(s.DurNS) / 1e3,
			Pid: pid[s.proc], Tid: tid + 1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
