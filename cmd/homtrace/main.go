// Command homtrace merges flight-recorder dumps from every fleet process
// (gateway, replicas, load client) into one clock-aligned Perfetto/Chrome
// trace, so a single request's gate→replica→predictor causal chain renders
// as one tree on one timeline.
//
// Dumps are the JSON written by POST /admin/flightdump or homload's
// -flight-dir; pass them as arguments or point -dir at a directory of
// them. Clock alignment uses cross-process parent→child span edges: a
// child span observed to start before its parent has its whole process
// shifted forward by the deficit, so skewed process clocks (or fake test
// clocks started apart) still produce a causally ordered merge.
//
// Queries:
//
//	-grep session=s42     keep only traces touching session s42
//	-grep name=gate.route keep traces containing a span name
//	-slower-than 5ms      keep traces whose slowest span is >= 5ms
//	-assert-span NAME     (repeatable) exit 1 unless one trace has every NAME
//
// Usage:
//
//	homtrace [-o trace.json] [-dir dumps/] [-grep k=v] [-slower-than d]
//	         [-assert-span name]... [dump.json ...]
package main

import (
	"flag"
	"fmt"
	"os"
)

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	out := flag.String("o", "", "output Chrome trace JSON path (default stdout)")
	dir := flag.String("dir", "", "directory of *.json flight dumps to merge")
	grep := flag.String("grep", "", "trace filter key=value; keys: session, name, trace, proc")
	slower := flag.Duration("slower-than", 0, "keep only traces containing a span at least this slow")
	var asserts stringList
	flag.Var(&asserts, "assert-span", "require one trace to contain every named span (repeatable; exit 1 otherwise)")
	flag.Parse()

	paths := flag.Args()
	if *dir != "" {
		dp, err := dumpPaths(*dir)
		if err != nil {
			fail(err)
		}
		paths = append(paths, dp...)
	}
	if len(paths) == 0 {
		fail(fmt.Errorf("no dumps: pass files or -dir"))
	}
	dumps, err := loadDumps(paths)
	if err != nil {
		fail(err)
	}

	merged := merge(dumps)
	if *grep != "" {
		merged, err = merged.grep(*grep)
		if err != nil {
			fail(err)
		}
	}
	if *slower > 0 {
		merged = merged.slowerThan(*slower)
	}
	if len(asserts) > 0 {
		if tid, ok := merged.findTraceWith(asserts); ok {
			fmt.Fprintf(os.Stderr, "homtrace: trace %s contains all of %v\n", tid, []string(asserts))
		} else {
			fmt.Fprintf(os.Stderr, "homtrace: no trace contains all of %v\n", []string(asserts))
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		w = f
	}
	if err := merged.writeChrome(w); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "homtrace: %d processes, %d spans, %d traces\n",
		len(merged.procs), len(merged.spans), merged.traceCount())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "homtrace:", err)
	os.Exit(1)
}
