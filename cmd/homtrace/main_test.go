package main

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"highorder/internal/obs"
)

// testDumps builds a two-process fleet trace: the gate's route span
// parents a forward span, which parents the replica's classify span — but
// the replica clock runs 5s behind, so its raw timestamps predate the
// gate's.
func testDumps() []obs.FlightDump {
	const skew = int64(5 * time.Second)
	gateBase := int64(1_000_000_000_000)
	return []obs.FlightDump{
		{
			Proc: "gate",
			Spans: []obs.FlightSpanRecord{
				{Trace: "aaaa", Span: "g1", Name: "gate.route", Session: "s1", StartNS: gateBase, DurNS: 8_000_000},
				{Trace: "aaaa", Span: "g2", Parent: "g1", Name: "gate.forward", StartNS: gateBase + 1_000_000, DurNS: 6_000_000},
				{Trace: "bbbb", Span: "g3", Name: "gate.route", Session: "s2", StartNS: gateBase + 20_000_000, DurNS: 500_000},
			},
		},
		{
			Proc: "r1",
			Spans: []obs.FlightSpanRecord{
				{Trace: "aaaa", Span: "r1a", Parent: "g2", Name: "serve.classify", Session: "s1",
					StartNS: gateBase + 2_000_000 - skew, DurNS: 3_000_000},
			},
		},
	}
}

func TestMergeAlignsSkewedClocks(t *testing.T) {
	m := merge(testDumps())
	if len(m.spans) != 4 {
		t.Fatalf("merged %d spans, want 4", len(m.spans))
	}
	if m.offset["gate"] != 0 {
		t.Fatalf("gate offset = %d, want 0", m.offset["gate"])
	}
	if m.offset["r1"] <= 0 {
		t.Fatalf("skewed replica not shifted forward: offset = %d", m.offset["r1"])
	}
	// After alignment the classify child must not start before its
	// forward parent.
	var parent, child span
	for _, s := range m.spans {
		switch s.Span {
		case "g2":
			parent = s
		case "r1a":
			child = s
		}
	}
	if m.aligned(child) < m.aligned(parent) {
		t.Fatalf("child starts at %d before parent at %d after alignment",
			m.aligned(child), m.aligned(parent))
	}
}

func TestGrepSelectsWholeTraces(t *testing.T) {
	m := merge(testDumps())
	got, err := m.grep("session=s1")
	if err != nil {
		t.Fatal(err)
	}
	// Trace aaaa has three spans; only two carry the session label, but
	// the whole trace survives the filter.
	if len(got.spans) != 3 {
		t.Fatalf("grep session=s1 kept %d spans, want 3", len(got.spans))
	}
	got, err = m.grep("proc=r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.spans) != 3 || got.traceCount() != 1 {
		t.Fatalf("grep proc=r1 kept %d spans / %d traces, want 3 / 1", len(got.spans), got.traceCount())
	}
	if _, err := m.grep("nonsense"); err == nil {
		t.Fatal("malformed grep accepted")
	}
	if _, err := m.grep("color=red"); err == nil {
		t.Fatal("unknown grep key accepted")
	}
}

func TestSlowerThanAndAssert(t *testing.T) {
	m := merge(testDumps())
	slow := m.slowerThan(5 * time.Millisecond)
	if slow.traceCount() != 1 {
		t.Fatalf("slower-than 5ms kept %d traces, want 1", slow.traceCount())
	}
	if id, ok := m.findTraceWith([]string{"gate.route", "gate.forward", "serve.classify"}); !ok || id != "aaaa" {
		t.Fatalf("findTraceWith = %q, %v; want aaaa, true", id, ok)
	}
	if _, ok := m.findTraceWith([]string{"gate.route", "no.such.span"}); ok {
		t.Fatal("findTraceWith matched a missing span name")
	}
}

func TestWriteChromeSchema(t *testing.T) {
	m := merge(testDumps())
	var buf bytes.Buffer
	if err := m.writeChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// 2 process_name metadata + 4 spans.
	if len(out.TraceEvents) != 6 {
		t.Fatalf("%d events, want 6", len(out.TraceEvents))
	}
	meta, complete := 0, 0
	minTs := -1.0
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if minTs < 0 || ev.Ts < minTs {
				minTs = ev.Ts
			}
			if ev.Pid < 1 || ev.Tid < 1 {
				t.Fatalf("event %+v lacks pid/tid", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 4 {
		t.Fatalf("meta=%d complete=%d, want 2/4", meta, complete)
	}
	if minTs != 0 {
		t.Fatalf("timestamps not normalized: min ts = %v", minTs)
	}
}
