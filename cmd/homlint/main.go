// Command homlint runs the repository's custom static-analysis suite
// (internal/analysis) over the module: determinism, seed plumbing, float
// comparison, and sync-misuse invariants that `go vet` does not know
// about. It prints findings as file:line:col diagnostics and exits 1 when
// any survive suppression directives, so it can gate CI:
//
//	go run ./cmd/homlint ./...
//
// Usage:
//
//	homlint [-enable a,b] [-list] [packages ...]
//
// A package argument is a directory, or a directory suffixed with /... to
// walk recursively; plain "./..." covers the whole module. With no
// arguments, ./... is assumed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"highorder/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("homlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	analyzers := analysis.All()
	if *enable != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*enable, ","))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}

	loader := analysis.NewLoader()
	var diags []analysis.Diagnostic
	for _, t := range targets {
		var (
			passes []*analysis.Pass
			err    error
		)
		if dir, ok := strings.CutSuffix(t, "/..."); ok {
			if dir == "" || dir == "." {
				dir = "."
			}
			passes, err = loader.LoadTree(dir)
		} else {
			passes, err = loader.LoadDir(t)
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, p := range passes {
			diags = append(diags, analysis.Run(p, analyzers)...)
			diags = append(diags, analysis.CheckDirectives(p)...)
		}
	}

	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "homlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
