// Command homlint runs the repository's whole-module static-analysis
// engine (internal/analysis) — determinism, seed plumbing, float
// comparison, sync misuse, lock ordering, hot-path allocations, snapshot
// compatibility, and dropped errors — and exits 1 when any finding
// survives suppression directives and the baseline, so it can gate CI:
//
//	go run ./cmd/homlint -baseline lint/baseline.json ./...
//
// Usage:
//
//	homlint [flags] [packages ...]
//
// A package argument is a directory (analyzed alone), or a directory
// suffixed with /... to load as a whole module tree with full
// cross-package type information, the call graph, and the module
// analyzers. With no arguments, ./... is assumed.
//
// Flags:
//
//	-list                 list analyzers and exit
//	-enable a,b           restrict the suite to the named analyzers
//	-json                 emit findings as JSON instead of text
//	-sarif FILE           additionally write a SARIF 2.1.0 report to FILE
//	-baseline FILE        tolerate findings recorded in FILE; only new ones fail
//	-write-baseline FILE  write current findings to FILE and exit 0
//	-fix                  apply mechanical fixes (errdrop `_ =`, fingerprint refresh)
//	-workers N            package-analysis parallelism (0 = one per package)
//	-v                    print per-analyzer timings to stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"highorder/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("homlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 report to this file")
	baselinePath := fs.String("baseline", "", "baseline file; findings recorded there are tolerated")
	writeBaseline := fs.String("write-baseline", "", "write current findings as a baseline to this file and exit")
	fix := fs.Bool("fix", false, "apply mechanical fixes")
	workers := fs.Int("workers", 0, "package-analysis parallelism (0 = one worker per package)")
	verbose := fs.Bool("v", false, "print per-analyzer timings to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	analyzers := analysis.All()
	if *enable != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*enable, ","))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}

	var (
		diags   []analysis.Diagnostic
		timings = map[string]*analysis.AnalyzerTiming{}
		order   []string
		root    string
	)
	for _, t := range targets {
		loader := analysis.NewLoader()
		var (
			prog *analysis.Program
			err  error
		)
		if dir, ok := strings.CutSuffix(t, "/..."); ok {
			if dir == "" {
				dir = "."
			}
			prog, err = loader.LoadModule(dir)
		} else {
			prog, err = loader.LoadDir(t)
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if root == "" {
			root = prog.Root
		}
		res := prog.Run(analyzers, analysis.RunOptions{Workers: *workers})
		diags = append(diags, res.Diagnostics...)
		for _, tm := range res.Timings {
			agg, ok := timings[tm.Analyzer]
			if !ok {
				agg = &analysis.AnalyzerTiming{Analyzer: tm.Analyzer}
				timings[tm.Analyzer] = agg
				order = append(order, tm.Analyzer)
			}
			agg.Duration += tm.Duration
			agg.Findings += tm.Findings
		}
	}

	if *verbose {
		for _, name := range order {
			tm := timings[name]
			fmt.Fprintf(stderr, "homlint: %-20s %10v  %d finding(s)\n", tm.Analyzer, tm.Duration.Round(10*time.Microsecond), tm.Findings)
		}
	}

	if *fix {
		applied, rest, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(stderr, "homlint: applied %d fix(es)\n", applied)
		}
		diags = rest
	}

	if *writeBaseline != "" {
		b := analysis.NewBaseline(diags, root, "baselined; audit and burn down")
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		if err := b.Encode(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "homlint: wrote %d baseline entr(ies) to %s\n", len(b.Entries), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fresh, stale := b.Filter(diags, root)
		for _, e := range stale {
			fmt.Fprintf(stderr, "homlint: stale baseline entry (no longer found): %s [%s] %s\n", e.File, e.Analyzer, e.Message)
		}
		diags = fresh
	}

	if *sarifPath != "" {
		if dir := filepath.Dir(*sarifPath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		err = analysis.WriteSARIF(f, diags, root)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
			HasFix   bool   `json:"hasFix,omitempty"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     analysis.RelPath(root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				HasFix:   d.Fix != nil,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(stderr, "homlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
