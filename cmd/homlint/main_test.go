package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the dogfood gate: the analyzer suite must run clean
// over this repository itself. Any new violation must either be fixed or
// carry a justified //homlint:allow directive.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{moduleRoot(t) + "/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("homlint found violations in this repository (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestFindsSeededViolations runs the CLI over the analyzer fixtures and
// checks it exits nonzero with findings from every analyzer.
func TestFindsSeededViolations(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{filepath.Join(root, "internal", "analysis", "testdata", "determinism"),
		filepath.Join(root, "internal", "analysis", "testdata", "seedplumb"),
		filepath.Join(root, "internal", "analysis", "testdata", "floatcmp"),
		filepath.Join(root, "internal", "analysis", "testdata", "syncmisuse")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1 on seeded violations, got %d\n%s%s", code, stdout.String(), stderr.String())
	}
	for _, name := range []string{"determinism", "seedplumb", "floatcmp", "syncmisuse"} {
		if !strings.Contains(stdout.String(), "["+name+"]") {
			t.Errorf("no %s finding in CLI output", name)
		}
	}
}

// TestEnableFilter checks -enable restricts the suite.
func TestEnableFilter(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join(root, "internal", "analysis", "testdata", "determinism")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-enable", "floatcmp", fixture}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("floatcmp alone should pass the determinism fixture, got exit %d:\n%s", code, stdout.String())
	}
	if code := run([]string{"-enable", "bogus", fixture}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer should exit 2, got %d", code)
	}
}

// TestListAnalyzers checks -list names the full suite.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"determinism", "seedplumb", "floatcmp", "syncmisuse"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

// TestFindsSeededModuleViolations runs the CLI over the flow-aware
// analyzer fixtures as module trees (the `/...` form that builds the call
// graph) and checks each seeded violation class fails the run.
func TestFindsSeededModuleViolations(t *testing.T) {
	root := moduleRoot(t)
	cases := []struct {
		fixture  string
		analyzer string
	}{
		{"lockorder", "lockorder"},
		{"hotpathalloc", "hotpathalloc"},
		{"errdrop", "errdrop"},
		{filepath.Join("snapshotcompat", "unbumped"), "snapshotcompat"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			target := filepath.Join(root, "internal", "analysis", "testdata", tc.fixture) + "/..."
			var stdout, stderr bytes.Buffer
			code := run([]string{"-enable", tc.analyzer, target}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("want exit 1 on seeded %s violations, got %d\n%s%s",
					tc.analyzer, code, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), "["+tc.analyzer+"]") {
				t.Errorf("no %s finding in CLI output:\n%s", tc.analyzer, stdout.String())
			}
		})
	}
}

// TestBaselineRoundTrip writes a baseline over a violating fixture and
// checks the same run passes against it, while a clean target reports the
// now-stale entries.
func TestBaselineRoundTrip(t *testing.T) {
	root := moduleRoot(t)
	target := filepath.Join(root, "internal", "analysis", "testdata", "errdrop") + "/..."
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-enable", "errdrop", "-write-baseline", baseline, target}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-enable", "errdrop", "-baseline", baseline, target}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined findings should pass, got exit %d:\n%s%s", code, stdout.String(), stderr.String())
	}

	// The same baseline against a clean tree is entirely stale.
	clean := filepath.Join(root, "internal", "analysis", "testdata", "lockorder") + "/..."
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-enable", "errdrop", "-baseline", baseline, clean}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean tree with stale baseline should exit 0, got %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale") {
		t.Errorf("stale baseline entries not reported on stderr:\n%s", stderr.String())
	}
}

// TestSARIFOutput checks -sarif writes a parseable SARIF log with one
// result per finding.
func TestSARIFOutput(t *testing.T) {
	root := moduleRoot(t)
	target := filepath.Join(root, "internal", "analysis", "testdata", "errdrop") + "/..."
	sarif := filepath.Join(t.TempDir(), "out", "homlint.sarif")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-enable", "errdrop", "-sarif", sarif, target}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	raw, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	if len(log.Runs[0].Results) == 0 {
		t.Fatal("SARIF log has no results for a violating fixture")
	}
	for _, r := range log.Runs[0].Results {
		if r.RuleID != "errdrop" {
			t.Errorf("unexpected ruleId %q", r.RuleID)
		}
	}
}

// TestJSONOutput checks -json emits a machine-readable finding list.
func TestJSONOutput(t *testing.T) {
	root := moduleRoot(t)
	target := filepath.Join(root, "internal", "analysis", "testdata", "errdrop") + "/..."
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-enable", "errdrop", "-json", target}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
	for _, f := range findings {
		if f.Analyzer != "errdrop" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}
}

// TestRepoCleanAgainstCommittedBaseline mirrors the CI invocation exactly:
// the committed baseline plus parallel module analysis must pass, and the
// committed baseline must not carry stale entries.
func TestRepoCleanAgainstCommittedBaseline(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", filepath.Join(root, "lint", "baseline.json"), root + "/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("CI invocation failed (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
	if strings.Contains(stderr.String(), "stale") {
		t.Errorf("committed baseline has stale entries:\n%s", stderr.String())
	}
}
