package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the dogfood gate: the analyzer suite must run clean
// over this repository itself. Any new violation must either be fixed or
// carry a justified //homlint:allow directive.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{moduleRoot(t) + "/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("homlint found violations in this repository (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestFindsSeededViolations runs the CLI over the analyzer fixtures and
// checks it exits nonzero with findings from every analyzer.
func TestFindsSeededViolations(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{filepath.Join(root, "internal", "analysis", "testdata", "determinism"),
		filepath.Join(root, "internal", "analysis", "testdata", "seedplumb"),
		filepath.Join(root, "internal", "analysis", "testdata", "floatcmp"),
		filepath.Join(root, "internal", "analysis", "testdata", "syncmisuse")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1 on seeded violations, got %d\n%s%s", code, stdout.String(), stderr.String())
	}
	for _, name := range []string{"determinism", "seedplumb", "floatcmp", "syncmisuse"} {
		if !strings.Contains(stdout.String(), "["+name+"]") {
			t.Errorf("no %s finding in CLI output", name)
		}
	}
}

// TestEnableFilter checks -enable restricts the suite.
func TestEnableFilter(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join(root, "internal", "analysis", "testdata", "determinism")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-enable", "floatcmp", fixture}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("floatcmp alone should pass the determinism fixture, got exit %d:\n%s", code, stdout.String())
	}
	if code := run([]string{"-enable", "bogus", fixture}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer should exit 2, got %d", code)
	}
}

// TestListAnalyzers checks -list names the full suite.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"determinism", "seedplumb", "floatcmp", "syncmisuse"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
