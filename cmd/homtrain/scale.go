package main

// The scaling mode: homtrain -scale sweeps history size × worker count
// over the synthetic Stagger stream and writes the committed
// BENCH_scale.json. Every history size is first built with the retained
// naive reference engine (the pre-optimization cost model, single
// worker); each optimized run is then timed against that baseline and
// checked to produce bit-identical per-record concept assignments — the
// determinism contract the speedup must not buy itself out of.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"highorder/internal/core"
	"highorder/internal/data"
	"highorder/internal/obs"
	"highorder/internal/synth"
)

// scaleRun is one row of BENCH_scale.json.
type scaleRun struct {
	HistoryRecords int    `json:"history_records"`
	Engine         string `json:"engine"` // "reference" or "optimized"
	Workers        int    `json:"workers"`
	GoMaxProcs     int    `json:"gomaxprocs"`
	// MergeSeconds is chunk_merge + concept_merge wall time — the
	// agglomeration hot path this PR optimizes.
	MergeSeconds   float64 `json:"merge_seconds"`
	TotalSeconds   float64 `json:"total_seconds"`
	Concepts       int     `json:"concepts"`
	ModelsTrained  int     `json:"models_trained"`
	ModelsReused   int     `json:"models_reused"`
	EdgesEvaluated int     `json:"edges_evaluated"`
	EdgesPruned    int     `json:"edges_pruned"`
	RecordsCopied  int     `json:"records_copied"`
	// SpeedupVsReference is reference MergeSeconds / this run's, for
	// optimized rows.
	SpeedupVsReference float64 `json:"speedup_vs_reference,omitempty"`
	// AssignmentsIdentical records the bit-identity check against the
	// reference run of the same history size.
	AssignmentsIdentical bool `json:"assignments_identical"`
}

type scaleBench struct {
	Config struct {
		Block            int     `json:"block"`
		Seed             int64   `json:"seed"`
		StreamSeed       int64   `json:"stream_seed"`
		Learner          string  `json:"learner"`
		ReuseRatio       float64 `json:"reuse_ratio"`
		EarlyStopMinSize int     `json:"early_stop_min_size"`
		HistorySizes     []int   `json:"history_sizes"`
		Workers          []int   `json:"workers"`
	} `json:"config"`
	Runs []scaleRun `json:"runs"`
}

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("homtrain: %s: bad value %q", flagName, part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("homtrain: %s: empty list", flagName)
	}
	return out, nil
}

// scaleAssignments expands a model's occurrence list into the per-record
// concept id vector used for the bit-identity check.
func scaleAssignments(m *core.Model, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for _, occ := range m.Occurrences {
		for t := occ.Start; t < occ.End && t < n; t++ {
			out[t] = occ.Concept
		}
	}
	return out
}

func sameAssignments(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeSeconds sums the agglomeration phases from a build's span tree.
func mergeSeconds(phases []obs.PhaseSummary) float64 {
	total := 0.0
	for _, p := range phases {
		if p.Phase == "build/chunk_merge" || p.Phase == "build/concept_merge" {
			total += p.WallSeconds
		}
	}
	return total
}

// buildScaleRun builds one configuration and returns its row plus the
// per-record assignments.
func buildScaleRun(hist *data.Dataset, opts core.Options, engine string, workers, maxprocs int) (scaleRun, []int, error) {
	prev := runtime.GOMAXPROCS(maxprocs)
	defer runtime.GOMAXPROCS(prev)
	tracer := obs.NewTracer(nil)
	opts.Tracer = tracer
	opts.Workers = workers
	opts.ReferenceEngine = engine == "reference"
	m, err := core.Build(hist, opts)
	if err != nil {
		return scaleRun{}, nil, err
	}
	run := scaleRun{
		HistoryRecords: hist.Len(),
		Engine:         engine,
		Workers:        workers,
		GoMaxProcs:     maxprocs,
		MergeSeconds:   mergeSeconds(tracer.Summarize()),
		TotalSeconds:   m.Stats.Elapsed.Seconds(),
		Concepts:       m.NumConcepts(),
		ModelsTrained:  m.Stats.Clustering.ModelsTrained,
		ModelsReused:   m.Stats.Clustering.ModelsReused,
		EdgesEvaluated: m.Stats.Clustering.EdgesEvaluated,
		EdgesPruned:    m.Stats.Clustering.EdgesPruned,
		RecordsCopied:  m.Stats.Clustering.RecordsCopied,
	}
	return run, scaleAssignments(m, hist.Len()), nil
}

// runScale executes the sweep and writes outPath.
func runScale(outPath string, block int, seed int64, learnerName string, opts core.Options, histList, workerList string) error {
	sizes, err := parseIntList("-scale-hist", histList)
	if err != nil {
		return err
	}
	workers, err := parseIntList("-scale-workers", workerList)
	if err != nil {
		return err
	}
	const streamSeed = 1021
	var b scaleBench
	b.Config.Block = block
	b.Config.Seed = seed
	b.Config.StreamSeed = streamSeed
	b.Config.Learner = learnerName
	b.Config.ReuseRatio = opts.ReuseRatio
	b.Config.EarlyStopMinSize = opts.EarlyStopMinSize
	b.Config.HistorySizes = sizes
	b.Config.Workers = workers

	for _, n := range sizes {
		g := synth.NewStagger(synth.StaggerConfig{Seed: streamSeed})
		hist := synth.TakeDataset(g, n)
		ref, refAssign, err := buildScaleRun(hist, opts, "reference", 1, 1)
		if err != nil {
			return err
		}
		ref.AssignmentsIdentical = true
		b.Runs = append(b.Runs, ref)
		fmt.Printf("scale: %6d records  reference  w=1  merge %.3fs  total %.3fs\n",
			n, ref.MergeSeconds, ref.TotalSeconds)
		for _, w := range workers {
			run, assign, err := buildScaleRun(hist, opts, "optimized", w, w)
			if err != nil {
				return err
			}
			run.AssignmentsIdentical = sameAssignments(refAssign, assign)
			if !run.AssignmentsIdentical {
				return fmt.Errorf("homtrain: scale: %d records, %d workers: assignments differ from the reference engine", n, w)
			}
			if run.MergeSeconds > 0 {
				run.SpeedupVsReference = ref.MergeSeconds / run.MergeSeconds
			}
			b.Runs = append(b.Runs, run)
			fmt.Printf("scale: %6d records  optimized  w=%d  merge %.3fs  total %.3fs  speedup %.2fx\n",
				n, w, run.MergeSeconds, run.TotalSeconds, run.SpeedupVsReference)
		}
	}
	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("scaling bench written to %s\n", outPath)
	return nil
}
