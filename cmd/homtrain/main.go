// Command homtrain builds a high-order model from a historical CSV stream
// and persists it for use by hompredict.
//
// Usage:
//
//	homtrain -in history.csv -schema schema.json -o model.gob \
//	         [-block 10] [-seed 1] [-learner tree|bayes]
package main

import (
	"flag"
	"fmt"
	"os"

	"highorder/internal/bayes"
	"highorder/internal/core"
	"highorder/internal/dataio"
)

func main() {
	in := flag.String("in", "", "historical labeled stream (CSV, required)")
	schemaPath := flag.String("schema", "", "stream schema (JSON, required)")
	out := flag.String("o", "model.gob", "output model path")
	block := flag.Int("block", 10, "concept-clustering block size (paper: 2-20)")
	seed := flag.Int64("seed", 1, "random seed")
	learner := flag.String("learner", "tree", "base learner: tree or bayes")
	flag.Parse()

	if *in == "" || *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "homtrain: -in and -schema are required")
		os.Exit(2)
	}
	sf, err := os.Open(*schemaPath)
	if err != nil {
		fail(err)
	}
	schema, err := dataio.ReadSchema(sf)
	sf.Close()
	if err != nil {
		fail(err)
	}
	df, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	hist, err := dataio.ReadCSV(df, schema)
	df.Close()
	if err != nil {
		fail(err)
	}

	opts := core.DefaultOptions()
	opts.BlockSize = *block
	opts.Seed = *seed
	switch *learner {
	case "tree":
	case "bayes":
		opts.Learner = bayes.NewLearner()
	default:
		fmt.Fprintf(os.Stderr, "homtrain: unknown learner %q\n", *learner)
		os.Exit(2)
	}

	m, err := core.Build(hist, opts)
	if err != nil {
		fail(err)
	}
	if err := dataio.SaveModel(*out, m); err != nil {
		fail(err)
	}
	fmt.Printf("built high-order model from %d records in %.2fs\n", hist.Len(), m.Stats.Elapsed.Seconds())
	fmt.Printf("concepts: %d (from %d occurrences)\n", m.NumConcepts(), len(m.Occurrences))
	for i, c := range m.Concepts {
		fmt.Printf("  concept %d: %d records, validation error %.4f, avg run %.0f records, frequency %.3f\n",
			i, c.Size, c.Err, c.Len, c.Freq)
	}
	fmt.Printf("model written to %s\n", *out)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "homtrain: %v\n", err)
	os.Exit(1)
}
