// Command homtrain builds a high-order model from a historical CSV stream
// and persists it for use by hompredict.
//
// Usage:
//
//	homtrain -in history.csv -schema schema.json -o model.gob \
//	         [-block 10] [-seed 1] [-learner tree|bayes] [-gomaxprocs N] \
//	         [-trace trace.json] [-bench-out BENCH_pipeline.json]
//
//	homtrain -scale [-scale-hist 3000,10000,30000] [-scale-workers 1,2,4,8] \
//	         [-scale-out BENCH_scale.json] [-block 10] [-seed 1] [-learner tree]
//
// -trace writes the offline pipeline's phase spans as Chrome trace-event
// JSON (load it at https://ui.perfetto.dev). -bench-out writes per-phase
// wall times and span counts as JSON (the committed BENCH_pipeline.json).
//
// -scale skips the CSV input entirely: it sweeps history size × worker
// count over the synthetic Stagger stream, measuring the agglomeration
// hot path against the retained naive reference engine and verifying
// bit-identical per-record assignments, and writes the committed
// BENCH_scale.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"highorder/internal/bayes"
	"highorder/internal/core"
	"highorder/internal/dataio"
	"highorder/internal/obs"
)

func main() {
	in := flag.String("in", "", "historical labeled stream (CSV, required)")
	schemaPath := flag.String("schema", "", "stream schema (JSON, required)")
	out := flag.String("o", "model.gob", "output model path")
	block := flag.Int("block", 10, "concept-clustering block size (paper: 2-20)")
	seed := flag.Int64("seed", 1, "random seed")
	learner := flag.String("learner", "tree", "base learner: tree or bayes")
	tracePath := flag.String("trace", "", "write pipeline phase spans as Chrome trace-event JSON")
	benchOut := flag.String("bench-out", "", "write per-phase wall times as JSON")
	maxprocs := flag.Int("gomaxprocs", 0, "set runtime.GOMAXPROCS for the build (0 keeps the default)")
	reuse := flag.Float64("reuse", core.DefaultOptions().ReuseRatio, "classifier-reuse ratio (§II-D); 0 disables reuse")
	earlyStop := flag.Int("earlystop", core.DefaultOptions().EarlyStopMinSize, "early-termination minimum cluster size (§II-D); 0 disables the freeze")
	scale := flag.Bool("scale", false, "run the scaling sweep over the synthetic Stagger stream instead of building from -in")
	scaleHist := flag.String("scale-hist", "3000,10000,30000", "comma-separated history sizes for -scale")
	scaleWorkers := flag.String("scale-workers", "1,2,4,8", "comma-separated worker counts for -scale")
	scaleOut := flag.String("scale-out", "BENCH_scale.json", "output path for the -scale bench")
	flag.Parse()

	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	baseOpts := core.DefaultOptions()
	baseOpts.BlockSize = *block
	baseOpts.Seed = *seed
	baseOpts.ReuseRatio = *reuse
	baseOpts.EarlyStopMinSize = *earlyStop
	switch *learner {
	case "tree":
	case "bayes":
		baseOpts.Learner = bayes.NewLearner()
	default:
		fmt.Fprintf(os.Stderr, "homtrain: unknown learner %q\n", *learner)
		os.Exit(2)
	}

	if *scale {
		if err := runScale(*scaleOut, *block, *seed, *learner, baseOpts, *scaleHist, *scaleWorkers); err != nil {
			fail(err)
		}
		return
	}

	if *in == "" || *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "homtrain: -in and -schema are required")
		os.Exit(2)
	}
	sf, err := os.Open(*schemaPath)
	if err != nil {
		fail(err)
	}
	schema, err := dataio.ReadSchema(sf)
	sf.Close()
	if err != nil {
		fail(err)
	}
	df, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	hist, err := dataio.ReadCSV(df, schema)
	df.Close()
	if err != nil {
		fail(err)
	}

	opts := baseOpts

	var tracer *obs.Tracer
	if *tracePath != "" || *benchOut != "" {
		tracer = obs.NewTracer(nil)
		opts.Tracer = tracer
	}

	m, err := core.Build(hist, opts)
	if err != nil {
		fail(err)
	}
	if err := dataio.SaveModel(*out, m); err != nil {
		fail(err)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, tracer); err != nil {
			fail(err)
		}
		fmt.Printf("phase trace written to %s (load at https://ui.perfetto.dev)\n", *tracePath)
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, m, hist.Len(), *block, *seed, *learner, tracer); err != nil {
			fail(err)
		}
		fmt.Printf("pipeline bench written to %s\n", *benchOut)
	}
	fmt.Printf("built high-order model from %d records in %.2fs\n", hist.Len(), m.Stats.Elapsed.Seconds())
	fmt.Printf("concepts: %d (from %d occurrences)\n", m.NumConcepts(), len(m.Occurrences))
	for i, c := range m.Concepts {
		fmt.Printf("  concept %d: %d records, validation error %.4f, avg run %.0f records, frequency %.3f\n",
			i, c.Size, c.Err, c.Len, c.Freq)
	}
	fmt.Printf("model written to %s\n", *out)
}

func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pipelineBench is the BENCH_pipeline.json schema: the build configuration
// and the tracer's per-phase aggregate (span counts, wall seconds, summed
// span args).
type pipelineBench struct {
	Config struct {
		HistoryRecords int    `json:"history_records"`
		Block          int    `json:"block"`
		Seed           int64  `json:"seed"`
		Learner        string `json:"learner"`
		GoMaxProcs     int    `json:"gomaxprocs"`
	} `json:"config"`
	Concepts       int                `json:"concepts"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Phases         []obs.PhaseSummary `json:"phases"`
}

func writeBench(path string, m *core.Model, records, block int, seed int64, learner string, tr *obs.Tracer) error {
	var b pipelineBench
	b.Config.HistoryRecords = records
	b.Config.Block = block
	b.Config.Seed = seed
	b.Config.Learner = learner
	b.Config.GoMaxProcs = runtime.GOMAXPROCS(0)
	b.Concepts = m.NumConcepts()
	b.ElapsedSeconds = m.Stats.Elapsed.Seconds()
	b.Phases = tr.Summarize()
	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "homtrain: %v\n", err)
	os.Exit(1)
}
