// Command homtrain builds a high-order model from a historical CSV stream
// and persists it for use by hompredict.
//
// Usage:
//
//	homtrain -in history.csv -schema schema.json -o model.gob \
//	         [-block 10] [-seed 1] [-learner tree|bayes] \
//	         [-trace trace.json] [-bench-out BENCH_pipeline.json]
//
// -trace writes the offline pipeline's phase spans as Chrome trace-event
// JSON (load it at https://ui.perfetto.dev). -bench-out writes per-phase
// wall times and span counts as JSON (the committed BENCH_pipeline.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"highorder/internal/bayes"
	"highorder/internal/core"
	"highorder/internal/dataio"
	"highorder/internal/obs"
)

func main() {
	in := flag.String("in", "", "historical labeled stream (CSV, required)")
	schemaPath := flag.String("schema", "", "stream schema (JSON, required)")
	out := flag.String("o", "model.gob", "output model path")
	block := flag.Int("block", 10, "concept-clustering block size (paper: 2-20)")
	seed := flag.Int64("seed", 1, "random seed")
	learner := flag.String("learner", "tree", "base learner: tree or bayes")
	tracePath := flag.String("trace", "", "write pipeline phase spans as Chrome trace-event JSON")
	benchOut := flag.String("bench-out", "", "write per-phase wall times as JSON")
	flag.Parse()

	if *in == "" || *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "homtrain: -in and -schema are required")
		os.Exit(2)
	}
	sf, err := os.Open(*schemaPath)
	if err != nil {
		fail(err)
	}
	schema, err := dataio.ReadSchema(sf)
	sf.Close()
	if err != nil {
		fail(err)
	}
	df, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	hist, err := dataio.ReadCSV(df, schema)
	df.Close()
	if err != nil {
		fail(err)
	}

	opts := core.DefaultOptions()
	opts.BlockSize = *block
	opts.Seed = *seed
	switch *learner {
	case "tree":
	case "bayes":
		opts.Learner = bayes.NewLearner()
	default:
		fmt.Fprintf(os.Stderr, "homtrain: unknown learner %q\n", *learner)
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *tracePath != "" || *benchOut != "" {
		tracer = obs.NewTracer(nil)
		opts.Tracer = tracer
	}

	m, err := core.Build(hist, opts)
	if err != nil {
		fail(err)
	}
	if err := dataio.SaveModel(*out, m); err != nil {
		fail(err)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, tracer); err != nil {
			fail(err)
		}
		fmt.Printf("phase trace written to %s (load at https://ui.perfetto.dev)\n", *tracePath)
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, m, hist.Len(), *block, *seed, *learner, tracer); err != nil {
			fail(err)
		}
		fmt.Printf("pipeline bench written to %s\n", *benchOut)
	}
	fmt.Printf("built high-order model from %d records in %.2fs\n", hist.Len(), m.Stats.Elapsed.Seconds())
	fmt.Printf("concepts: %d (from %d occurrences)\n", m.NumConcepts(), len(m.Occurrences))
	for i, c := range m.Concepts {
		fmt.Printf("  concept %d: %d records, validation error %.4f, avg run %.0f records, frequency %.3f\n",
			i, c.Size, c.Err, c.Len, c.Freq)
	}
	fmt.Printf("model written to %s\n", *out)
}

func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pipelineBench is the BENCH_pipeline.json schema: the build configuration
// and the tracer's per-phase aggregate (span counts, wall seconds, summed
// span args).
type pipelineBench struct {
	Config struct {
		HistoryRecords int    `json:"history_records"`
		Block          int    `json:"block"`
		Seed           int64  `json:"seed"`
		Learner        string `json:"learner"`
		GoMaxProcs     int    `json:"gomaxprocs"`
	} `json:"config"`
	Concepts       int                `json:"concepts"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Phases         []obs.PhaseSummary `json:"phases"`
}

func writeBench(path string, m *core.Model, records, block int, seed int64, learner string, tr *obs.Tracer) error {
	var b pipelineBench
	b.Config.HistoryRecords = records
	b.Config.Block = block
	b.Config.Seed = seed
	b.Config.Learner = learner
	b.Config.GoMaxProcs = runtime.GOMAXPROCS(0)
	b.Concepts = m.NumConcepts()
	b.ElapsedSeconds = m.Stats.Elapsed.Seconds()
	b.Phases = tr.Summarize()
	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "homtrain: %v\n", err)
	os.Exit(1)
}
