// Command homgate fronts a fleet of homserve replicas with a
// session-routing gateway: session ids are consistent-hashed onto the
// replica ring, replica join/leave triggers live migration of only the
// sessions whose ring owner changed, a health loop quarantines dead
// replicas, and an optional metrics-driven autoscaler grows and shrinks
// a self-hosted fleet.
//
// Two deployment shapes:
//
//   - External replicas: start homserve processes yourself and hand their
//     addresses to -replica (repeatable). More replicas can join or leave
//     at runtime through POST/DELETE /admin/replicas.
//   - Self-hosted fleet: give -model and -fleet N and homgate boots N
//     in-process replicas on loopback listeners. Only this shape can
//     autoscale (-autoscale min:max), because scaling needs the authority
//     to provision replicas, not just route to them.
//
// Usage:
//
//	homgate -listen :8090 -replica r1=http://10.0.0.1:8080 -replica r2=http://10.0.0.2:8080
//	homgate -listen :8090 -model model.gob -fleet 3
//	homgate -listen :8090 -model model.gob -fleet 1 -autoscale 1:4
//
// API (forwarded):  /v1/sessions*, per-session classify/observe/state.
// API (gateway):    /metrics, /healthz, GET/POST /admin/replicas,
// DELETE /admin/replicas/{id}, POST /admin/migrate.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"highorder/internal/dataio"
	"highorder/internal/gate"
	"highorder/internal/obs"
	"highorder/internal/serve"
)

// replicaFlags collects repeatable -replica id=url pairs in order.
type replicaFlags []struct{ id, url string }

func (r *replicaFlags) String() string { return fmt.Sprintf("%d replicas", len(*r)) }

func (r *replicaFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return errors.New(`want "id=url"`)
	}
	*r = append(*r, struct{ id, url string }{id, url})
	return nil
}

// parseMinMax parses "min:max" autoscale bounds.
func parseMinMax(v string) (int, int, error) {
	lo, hi, ok := strings.Cut(v, ":")
	if !ok {
		return 0, 0, fmt.Errorf("autoscale bounds %q: want min:max", v)
	}
	minR, err := strconv.Atoi(lo)
	if err != nil {
		return 0, 0, fmt.Errorf("autoscale min %q: %w", lo, err)
	}
	maxR, err := strconv.Atoi(hi)
	if err != nil {
		return 0, 0, fmt.Errorf("autoscale max %q: %w", hi, err)
	}
	if minR < 1 || maxR < minR {
		return 0, 0, fmt.Errorf("autoscale bounds %d:%d: want 1 <= min <= max", minR, maxR)
	}
	return minR, maxR, nil
}

func main() {
	var replicas replicaFlags
	listen := flag.String("listen", ":8090", "gateway listen address")
	flag.Var(&replicas, "replica", `external replica as "id=http://host:port" (repeatable)`)
	modelPath := flag.String("model", "", "model for a self-hosted in-process fleet (mutually exclusive with -replica)")
	fleetN := flag.Int("fleet", 1, "self-hosted replica count at boot (with -model)")
	autoscale := flag.String("autoscale", "", `autoscale bounds "min:max" (with -model; empty = off)`)
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 128)")
	healthInterval := flag.Duration("health-interval", time.Second, "replica health-probe period")
	healthFails := flag.Int("health-fails", 0, "consecutive probe failures that quarantine a replica (0 = default 2)")
	scaleInterval := flag.Duration("scale-interval", 2*time.Second, "autoscaler tick period")
	highQueue := flag.Float64("scale-high-queue", 0, "scale up at this fleet-average queue depth (0 = default 8)")
	highP99 := flag.Duration("scale-high-p99", 0, "scale up when any replica's classify p99 reaches this (0 = off)")
	queue := flag.Int("queue", 0, "self-hosted replica queue depth (0 = default)")
	workers := flag.Int("workers", 0, "self-hosted replica workers (0 = GOMAXPROCS)")
	flightSample := flag.Uint64("flight-sample", 0, "flight recorder: keep ~1 in N traces on the gateway and self-hosted replicas (0 = off)")
	flightSlots := flag.Int("flight-slots", 0, "flight recorder ring capacity in spans (0 = default 4096)")
	flightDir := flag.String("flight-dir", "", "write fault-triggered flight dumps into this directory (with -flight-sample)")
	flag.Parse()

	if (*modelPath != "") == (len(replicas) != 0) {
		fmt.Fprintln(os.Stderr, "homgate: exactly one of -model or -replica is required")
		os.Exit(2)
	}
	if *autoscale != "" && *modelPath == "" {
		fmt.Fprintln(os.Stderr, "homgate: -autoscale needs a self-hosted fleet (-model)")
		os.Exit(2)
	}

	var gateRec *obs.Recorder
	if *flightSample > 0 {
		if *flightDir != "" {
			if err := os.MkdirAll(*flightDir, 0o755); err != nil {
				fail(err)
			}
		}
		gateRec = newFlightRecorder("gate", *flightSample, *flightSlots, *flightDir)
		fmt.Printf("homgate: flight recorder on (1 in %d)\n", *flightSample)
	}

	g := gate.New(gate.Config{
		Vnodes:         *vnodes,
		HealthInterval: *healthInterval,
		HealthFails:    *healthFails,
		Recorder:       gateRec,
	})

	var fleet *gate.Fleet
	if *modelPath != "" {
		m, err := dataio.LoadModel(*modelPath)
		if err != nil {
			fail(err)
		}
		if *fleetN < 1 {
			fail(errors.New("-fleet must be at least 1"))
		}
		fleet = gate.NewFleet(m, serve.Options{QueueDepth: *queue, Workers: *workers})
		if *flightSample > 0 {
			sample, slots, dir := *flightSample, *flightSlots, *flightDir
			fleet.ReplicaOptions = func(id string, opts serve.Options) serve.Options {
				opts.Recorder = newFlightRecorder(id, sample, slots, dir)
				return opts
			}
		}
		defer fleet.Close()
		for i := 0; i < *fleetN; i++ {
			id, url, err := fleet.ScaleUp()
			if err != nil {
				fail(err)
			}
			if err := g.Join(id, url); err != nil {
				fail(fmt.Errorf("joining self-hosted replica %s: %w", id, err))
			}
			fmt.Printf("homgate: replica %s on %s\n", id, url)
		}
	} else {
		for _, r := range replicas {
			if err := g.Join(r.id, r.url); err != nil {
				fail(fmt.Errorf("joining replica %s at %s: %w", r.id, r.url, err))
			}
			fmt.Printf("homgate: replica %s at %s\n", r.id, r.url)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go g.HealthLoop(ctx.Done())

	if *autoscale != "" {
		minR, maxR, err := parseMinMax(*autoscale)
		if err != nil {
			fail(err)
		}
		a := gate.NewAutoscaler(g, fleet, gate.AutoscalerConfig{
			Min:       minR,
			Max:       maxR,
			HighQueue: *highQueue,
			HighP99:   *highP99,
			Interval:  *scaleInterval,
		})
		go a.Run(ctx.Done(), func(d gate.Decision, err error) {
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "homgate: autoscale: %v\n", err)
			case d.Action != "":
				fmt.Printf("homgate: autoscale %s %s (%s)\n", d.Action, d.Replica, d.Reason)
			}
		})
		fmt.Printf("homgate: autoscaling %d..%d replicas every %s\n", minR, maxR, *scaleInterval)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: g.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(l) }()
	fmt.Printf("homgate: routing %d replicas on %s\n", len(g.Replicas()), l.Addr())

	select {
	case err := <-served:
		fail(err)
	case <-ctx.Done():
	}
	shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		fail(err)
	}
	fmt.Println("homgate: drained, bye")
}

// newFlightRecorder builds one process's flight recorder, persisting
// fault-triggered dumps into dir when set. Best-effort writes: a full disk
// must never take routing down.
func newFlightRecorder(proc string, sample uint64, slots int, dir string) *obs.Recorder {
	rec := obs.NewRecorder(obs.FlightConfig{Proc: proc, Slots: slots, SampleOneIn: sample})
	if dir != "" {
		rec.OnTrigger(func(d obs.FlightDump) {
			name := fmt.Sprintf("%s-%s-%d.json", d.Proc, d.Reason, d.CapturedNS)
			b, err := json.MarshalIndent(d, "", " ")
			if err == nil {
				err = os.WriteFile(filepath.Join(dir, name), b, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "homgate: flight dump: %v\n", err)
			}
		})
	}
	return rec
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "homgate: %v\n", err)
	os.Exit(1)
}
