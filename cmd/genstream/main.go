// Command genstream generates benchmark data streams to CSV, with the
// stream schema optionally written as JSON, so models can be trained and
// evaluated from files.
//
// Usage:
//
//	genstream -stream stagger|hyperplane|intrusion -n 200000 \
//	          [-lambda 0.001] [-seed 1] [-o stream.csv] [-schema schema.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"highorder/internal/dataio"
	"highorder/internal/synth"
)

func main() {
	stream := flag.String("stream", "stagger", "stream to generate: stagger, hyperplane, or intrusion")
	n := flag.Int("n", 100000, "number of records")
	lambda := flag.Float64("lambda", 0, "concept changing rate (0 = stream default of 0.001)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output CSV path (default: stdout)")
	schemaOut := flag.String("schema", "", "also write the schema as JSON to this path")
	flag.Parse()

	var g synth.Stream
	switch *stream {
	case "stagger":
		g = synth.NewStagger(synth.StaggerConfig{Lambda: *lambda, Seed: *seed})
	case "hyperplane":
		g = synth.NewHyperplane(synth.HyperplaneConfig{Lambda: *lambda, Seed: *seed})
	case "intrusion":
		g = synth.NewIntrusion(synth.IntrusionConfig{Lambda: *lambda, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "genstream: unknown stream %q\n", *stream)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := dataio.WriteCSV(w, synth.TakeDataset(g, *n)); err != nil {
		fail(err)
	}
	if *schemaOut != "" {
		f, err := os.Create(*schemaOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := dataio.WriteSchema(f, g.Schema()); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "genstream: %v\n", err)
	os.Exit(1)
}
