// Command hompredict classifies a labeled CSV stream with a persisted
// high-order model under the test-then-train protocol: each record is
// first predicted from its attributes alone, then its label is fed to the
// predictor as the online cue stream.
//
// Usage:
//
//	hompredict -model model.gob -in test.csv [-schema schema.json] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"highorder/internal/data"
	"highorder/internal/dataio"
)

func main() {
	modelPath := flag.String("model", "model.gob", "persisted high-order model")
	in := flag.String("in", "", "labeled test stream (CSV, required)")
	schemaPath := flag.String("schema", "", "stream schema JSON (default: the model's schema)")
	verbose := flag.Bool("v", false, "print every prediction")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "hompredict: -in is required")
		os.Exit(2)
	}
	m, err := dataio.LoadModel(*modelPath)
	if err != nil {
		fail(err)
	}
	schema := m.Schema
	if *schemaPath != "" {
		f, err := os.Open(*schemaPath)
		if err != nil {
			fail(err)
		}
		schema, err = dataio.ReadSchema(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	// The stream is processed record-at-a-time so arbitrarily long test
	// files run in constant memory.
	sr, err := dataio.NewStreamReader(f, schema)
	if err != nil {
		fail(err)
	}

	p := m.NewPredictor()
	records, errors := 0, 0
	for {
		r, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(err)
		}
		got := p.Predict(data.Record{Values: r.Values})
		if got != r.Class {
			errors++
		}
		if *verbose {
			fmt.Printf("%d: predicted=%s actual=%s\n", records, schema.Classes[got], schema.Classes[r.Class])
		}
		p.Observe(r)
		records++
	}
	fmt.Printf("records: %d\n", records)
	fmt.Printf("errors: %d (%.5f)\n", errors, float64(errors)/float64(records))
	best, prob := p.CurrentConcept()
	fmt.Printf("current concept: %d (probability %.3f)\n", best, prob)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "hompredict: %v\n", err)
	os.Exit(1)
}
