// Command hompredict classifies a labeled CSV stream with a persisted
// high-order model under the test-then-train protocol: each record is
// first predicted from its attributes alone, then its label is fed to the
// predictor as the online cue stream.
//
// The replay itself is internal/serve's session/replay plumbing — the same
// code path homserve runs for served traffic — so file replay and served
// replay stay bit-identical by construction.
//
// Usage:
//
//	hompredict -model model.gob -in test.csv [-schema schema.json] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"highorder/internal/data"
	"highorder/internal/dataio"
	"highorder/internal/serve"
)

func main() {
	modelPath := flag.String("model", "model.gob", "persisted high-order model")
	in := flag.String("in", "", "labeled test stream (CSV, required)")
	schemaPath := flag.String("schema", "", "stream schema JSON (default: the model's schema)")
	verbose := flag.Bool("v", false, "print every prediction")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "hompredict: -in is required")
		os.Exit(2)
	}
	m, err := dataio.LoadModel(*modelPath)
	if err != nil {
		fail(err)
	}
	schema := m.Schema
	if *schemaPath != "" {
		f, err := os.Open(*schemaPath)
		if err != nil {
			fail(err)
		}
		schema, err = dataio.ReadSchema(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	// The stream is processed record-at-a-time so arbitrarily long test
	// files run in constant memory.
	sr, err := dataio.NewStreamReader(f, schema)
	if err != nil {
		fail(err)
	}

	var onRecord func(i, predicted int, r data.Record)
	if *verbose {
		onRecord = func(i, predicted int, r data.Record) {
			fmt.Printf("%d: predicted=%s actual=%s\n", i, schema.Classes[predicted], schema.Classes[r.Class])
		}
	}
	sess := serve.NewLocalSession(m.NewPredictor())
	res, err := serve.Replay(sess, sr.Next, onRecord)
	if err != nil {
		fail(err)
	}
	info := sess.Info()
	fmt.Printf("records: %d\n", res.Records)
	fmt.Printf("errors: %d (%.5f)\n", res.Errors, res.ErrorRate())
	fmt.Printf("current concept: %d (probability %.3f)\n", info.CurrentConcept, info.CurrentProbability)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "hompredict: %v\n", err)
	os.Exit(1)
}
