// Command homexplain renders a persisted high-order model for humans:
// per-concept statistics, the concept transition matrix χ, and — when the
// historical stream is supplied — a C4.5rules-style rule list per concept,
// extracted from the concept's tree and the concept's own historical
// records.
//
// Usage:
//
//	homexplain -model model.gob [-in history.csv] [-rules]
package main

import (
	"flag"
	"fmt"
	"os"

	"highorder/internal/data"
	"highorder/internal/dataio"
	"highorder/internal/hmm"
	"highorder/internal/tree"
)

func main() {
	modelPath := flag.String("model", "model.gob", "persisted high-order model")
	in := flag.String("in", "", "historical stream CSV (enables per-concept rule extraction)")
	rules := flag.Bool("rules", true, "extract rules when -in is given")
	flag.Parse()

	m, err := dataio.LoadModel(*modelPath)
	if err != nil {
		fail(err)
	}
	fmt.Printf("high-order model: %d concepts over schema %s\n\n", m.NumConcepts(), m.Schema)

	fmt.Println("concepts:")
	for i, c := range m.Concepts {
		occs := 0
		for _, occ := range m.Occurrences {
			if occ.Concept == i {
				occs++
			}
		}
		fmt.Printf("  %d: %6d records in %2d occurrences, validation error %.4f, avg run %6.0f, frequency %.3f\n",
			i, c.Size, occs, c.Err, c.Len, c.Freq)
	}

	fmt.Println("\ntransition matrix χ (per record):")
	fmt.Printf("%8s", "")
	for j := range m.Concepts {
		fmt.Printf(" %10s", fmt.Sprintf("→%d", j))
	}
	fmt.Println()
	for i, row := range m.Chi {
		fmt.Printf("%8s", fmt.Sprintf("from %d", i))
		for _, v := range row {
			fmt.Printf(" %10.6f", v)
		}
		fmt.Println()
	}

	fmt.Println("\noccurrence timeline:")
	for i, occ := range m.Occurrences {
		fmt.Printf("  %3d: [%7d, %7d) → concept %d\n", i, occ.Start, occ.End, occ.Concept)
	}

	if *in == "" || !*rules {
		return
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	hist, err := dataio.ReadCSV(f, m.Schema)
	f.Close()
	if err != nil {
		fail(err)
	}
	// Cross-check: decode the history's most likely concept sequence with
	// the HMM view (§III-A) and report its agreement with the clustering's
	// occurrence assignment.
	decoded := hmm.DecodeConcepts(m, hist.Records)
	if decoded != nil {
		agree := 0
		for _, occ := range m.Occurrences {
			for t := occ.Start; t < occ.End && t < len(decoded); t++ {
				if decoded[t] == occ.Concept {
					agree++
				}
			}
		}
		fmt.Printf("\nViterbi cross-check: HMM decoding agrees with the clustering on %.1f%% of historical records\n",
			100*float64(agree)/float64(len(decoded)))
	}

	fmt.Println("\nper-concept rules:")
	for ci := range m.Concepts {
		tr, ok := m.Concepts[ci].Model.(*tree.Tree)
		if !ok {
			fmt.Printf("  concept %d: base model is not a tree; rules unavailable\n", ci)
			continue
		}
		// Reassemble the concept's historical records from its occurrences.
		conceptData := data.NewDataset(m.Schema)
		for _, occ := range m.Occurrences {
			if occ.Concept == ci && occ.End <= hist.Len() {
				conceptData = conceptData.Concat(hist.Slice(occ.Start, occ.End))
			}
		}
		if conceptData.Len() == 0 {
			fmt.Printf("  concept %d: no historical records found\n", ci)
			continue
		}
		rs := tr.ExtractRules(conceptData, 0.25)
		fmt.Printf("  concept %d (%d rules):\n", ci, rs.Len())
		for i := range rs.Rules {
			fmt.Printf("    %s\n", rs.Rules[i].String(m.Schema))
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "homexplain: %v\n", err)
	os.Exit(1)
}
