// Command homexplain renders a persisted high-order model for humans:
// per-concept statistics, the concept transition matrix χ, and — when the
// historical stream is supplied — a C4.5rules-style rule list per concept,
// extracted from the concept's tree and the concept's own historical
// records.
//
// With -timeline (and -in), it replays the stream through a fresh
// predictor instrumented with the obs introspection sink and renders the
// MAP-concept timeline: one line per stable segment plus every switch with
// its active-probability vector — the online view of Eqs. 5–9 for humans.
//
// Usage:
//
//	homexplain -model model.gob [-in history.csv] [-rules] [-timeline]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"highorder/internal/core"
	"highorder/internal/data"
	"highorder/internal/dataio"
	"highorder/internal/hmm"
	"highorder/internal/obs"
	"highorder/internal/tree"
)

func main() {
	modelPath := flag.String("model", "model.gob", "persisted high-order model")
	in := flag.String("in", "", "historical stream CSV (enables per-concept rule extraction)")
	rules := flag.Bool("rules", true, "extract rules when -in is given")
	timeline := flag.Bool("timeline", false, "replay -in through an instrumented predictor and print the MAP-concept timeline")
	flag.Parse()

	m, err := dataio.LoadModel(*modelPath)
	if err != nil {
		fail(err)
	}
	fmt.Printf("high-order model: %d concepts over schema %s\n\n", m.NumConcepts(), m.Schema)

	fmt.Println("concepts:")
	for i, c := range m.Concepts {
		occs := 0
		for _, occ := range m.Occurrences {
			if occ.Concept == i {
				occs++
			}
		}
		fmt.Printf("  %d: %6d records in %2d occurrences, validation error %.4f, avg run %6.0f, frequency %.3f\n",
			i, c.Size, occs, c.Err, c.Len, c.Freq)
	}

	fmt.Println("\ntransition matrix χ (per record):")
	fmt.Printf("%8s", "")
	for j := range m.Concepts {
		fmt.Printf(" %10s", fmt.Sprintf("→%d", j))
	}
	fmt.Println()
	for i, row := range m.Chi {
		fmt.Printf("%8s", fmt.Sprintf("from %d", i))
		for _, v := range row {
			fmt.Printf(" %10.6f", v)
		}
		fmt.Println()
	}

	fmt.Println("\noccurrence timeline:")
	for i, occ := range m.Occurrences {
		fmt.Printf("  %3d: [%7d, %7d) → concept %d\n", i, occ.Start, occ.End, occ.Concept)
	}

	if *in == "" {
		if *timeline {
			fmt.Fprintln(os.Stderr, "homexplain: -timeline needs -in")
			os.Exit(2)
		}
		return
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	hist, err := dataio.ReadCSV(f, m.Schema)
	f.Close()
	if err != nil {
		fail(err)
	}

	if *timeline {
		renderTimeline(m, hist)
	}
	if !*rules {
		return
	}
	// Cross-check: decode the history's most likely concept sequence with
	// the HMM view (§III-A) and report its agreement with the clustering's
	// occurrence assignment.
	decoded := hmm.DecodeConcepts(m, hist.Records)
	if decoded != nil {
		agree := 0
		for _, occ := range m.Occurrences {
			for t := occ.Start; t < occ.End && t < len(decoded); t++ {
				if decoded[t] == occ.Concept {
					agree++
				}
			}
		}
		fmt.Printf("\nViterbi cross-check: HMM decoding agrees with the clustering on %.1f%% of historical records\n",
			100*float64(agree)/float64(len(decoded)))
	}

	fmt.Println("\nper-concept rules:")
	for ci := range m.Concepts {
		tr, ok := m.Concepts[ci].Model.(*tree.Tree)
		if !ok {
			fmt.Printf("  concept %d: base model is not a tree; rules unavailable\n", ci)
			continue
		}
		// Reassemble the concept's historical records from its occurrences.
		conceptData := data.NewDataset(m.Schema)
		for _, occ := range m.Occurrences {
			if occ.Concept == ci && occ.End <= hist.Len() {
				conceptData = conceptData.Concat(hist.Slice(occ.Start, occ.End))
			}
		}
		if conceptData.Len() == 0 {
			fmt.Printf("  concept %d: no historical records found\n", ci)
			continue
		}
		rs := tr.ExtractRules(conceptData, 0.25)
		fmt.Printf("  concept %d (%d rules):\n", ci, rs.Len())
		for i := range rs.Rules {
			fmt.Printf("    %s\n", rs.Rules[i].String(m.Schema))
		}
	}
}

// renderTimeline replays the labeled stream through a fresh predictor with
// a TimelineSink and prints the MAP-concept segments and switch events.
func renderTimeline(m *core.Model, hist *data.Dataset) {
	p := m.NewPredictor()
	sink := &obs.TimelineSink{}
	p.SetSink(sink)
	for _, r := range hist.Records {
		p.Observe(r)
	}
	fmt.Printf("\nintrospection timeline (%d labeled records replayed):\n", hist.Len())
	events := sink.Events
	for start := 0; start < len(events); {
		end := start
		for end+1 < len(events) && events[end+1].MAP == events[start].MAP {
			end++
		}
		meanP := 0.0
		for _, ev := range events[start : end+1] {
			meanP += ev.Prob
		}
		meanP /= float64(end - start + 1)
		fmt.Printf("  [%7d, %7d] concept %d  mean P %.3f\n",
			events[start].Seq, events[end].Seq, events[start].MAP, meanP)
		start = end + 1
	}
	switches := sink.Switches()
	fmt.Printf("  %d MAP switches\n", len(switches))
	for _, ev := range switches {
		fmt.Printf("    record %7d: concept %d -> %d  active %s\n",
			ev.Seq, ev.PrevMAP, ev.MAP, probString(ev.Active))
	}
}

// probString renders an active-probability vector compactly.
func probString(probs []float64) string {
	parts := make([]string, len(probs))
	for i, p := range probs {
		parts[i] = fmt.Sprintf("%.2f", p)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "homexplain: %v\n", err)
	os.Exit(1)
}
