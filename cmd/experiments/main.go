// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run id] [-scale f] [-runs n] [-seed s]
//
// With no -run flag every registered experiment runs in order. -scale
// multiplies the paper's stream sizes (1.0 = the paper's 200k/400k and
// 1M/3.9M streams); the default 0.05 finishes the full suite in minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"highorder/internal/clock"
	"highorder/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id to run (default: all); one of "+strings.Join(experiments.IDs(), ", "))
	scale := flag.Float64("scale", 0.05, "fraction of the paper's stream sizes")
	runs := flag.Int("runs", 3, "independent runs to average (paper: 20)")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Runs: *runs, Seed: *seed, Out: os.Stdout}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		runner, ok := experiments.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (have %s)\n", id, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		start := clock.Wall()
		if err := runner(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", id, clock.Wall().Sub(start).Seconds())
	}
}
