package highorder_test

import (
	"fmt"

	"highorder"
)

// Example shows the three-call workflow: build a high-order model from a
// historical labeled stream, then classify the continuing stream while
// feeding it the labeled cues.
func Example() {
	// Historical labeled stream (archived, time-ordered data).
	gen := highorder.NewStagger(highorder.StaggerConfig{Seed: 42})
	history := highorder.TakeDataset(gen, 8000)

	opts := highorder.DefaultBuildOptions()
	opts.Seed = 42
	model, err := highorder.Build(history, opts)
	if err != nil {
		panic(err)
	}

	// Online: predict each unlabeled record, then reveal its label.
	p := model.NewPredictor()
	test := highorder.TakeDataset(gen, 8000)
	errors := 0
	for _, r := range test.Records {
		if p.Predict(highorder.Record{Values: r.Values}) != r.Class {
			errors++
		}
		p.Observe(r)
	}
	errRate := float64(errors) / float64(test.Len())

	fmt.Println("multiple stable concepts discovered:", model.NumConcepts() >= 2)
	fmt.Println("online error below 2%:", errRate < 0.02)
	// Output:
	// multiple stable concepts discovered: true
	// online error below 2%: true
}
