#!/bin/sh
# verify.sh — the repository's tier-1 verification gate.
#
# Runs, in order: formatting, vet, build, the full test suite under the
# race detector, short fuzz passes over the CSV parsers, the serving API
# decoder, and the homlint directive grammar, a coverage floor on the
# fault-hardened serving packages, and the repository's own whole-module
# static-analysis suite (cmd/homlint, checked against the committed
# baseline with a SARIF report written to results/). Every step must
# pass; the script exits nonzero at the first failure.
#
# Usage:  ./verify.sh            # from the module root
#         FUZZTIME=30s ./verify.sh   # longer fuzz budget
set -eu

cd "$(dirname "$0")"

FUZZTIME="${FUZZTIME:-5s}"

step() {
	echo "== $*"
}

step gofmt
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

step go vet ./...
go vet ./...

step go build ./...
go build ./...

step "go test -race ./..."
go test -race ./...

# The race detector skews allocation counts, so the AllocsPerRun
# ceilings (similarityEdge, zero-copy view iteration, and the flight
# recorder's disabled/unsampled 0-alloc paths) and the benchmark smoke
# run without it.
step "alloc ceilings (internal/cluster, internal/data, internal/obs, internal/store)"
go test ./internal/cluster ./internal/data -run Allocs -count=1
go test ./internal/obs -run Allocs -count=1
go test ./internal/store -run Allocs -count=1

# The compiled classify hot path contract: ClassifyBatch allocates
# nothing per call for any compiled base learner, the interpreted
# Predict/PredictProba twins stay 0-alloc too, and the compiled kernel
# sustains at least 1M records/s pinned to one core (HOM_COMPILED_MIN_RPS
# overrides the floor). The -race pass above already proves the compiled
# and interpreted predictors bit-identical (TestGoldenEquivalence plus
# the differential fuzz corpus); these ceilings run without the race
# detector because its instrumentation skews both allocations and time.
step "compiled hot path: alloc ceilings + records/s floor (GOMAXPROCS=1)"
go test ./internal/core -run Allocs -count=1
GOMAXPROCS=1 go test ./internal/compiled -run 'Allocs|Throughput' -count=1

step "bench smoke (-benchtime 1x)"
go test ./internal/cluster ./internal/data -run '^$' -bench . -benchtime 1x >/dev/null

step "fuzz dataio (${FUZZTIME} each)"
go test ./internal/dataio -run='^$' -fuzz='^FuzzParseRecord$' -fuzztime="$FUZZTIME"
go test ./internal/dataio -run='^$' -fuzz='^FuzzReadStream$' -fuzztime="$FUZZTIME"

step "fuzz serve classify decoder (${FUZZTIME})"
go test ./internal/serve -run='^$' -fuzz='^FuzzClassifyRequest$' -fuzztime="$FUZZTIME"

# The binary wire codec and the compiled predictor each carry a
# differential fuzzer: binary frames must round-trip losslessly and
# reach the same accept/reject verdict as the JSON decoder, and the
# compiled predictor must stay bit-identical to the interpreted one
# under arbitrary interleavings of observe/advance/classify.
step "fuzz binary records codec (${FUZZTIME})"
go test ./internal/serve -run='^$' -fuzz='^FuzzBinaryRecords$' -fuzztime="$FUZZTIME"

step "fuzz compiled-vs-interpreted differential (${FUZZTIME})"
go test ./internal/compiled -run='^$' -fuzz='^FuzzCompiledVsInterpreted$' -fuzztime="$FUZZTIME"

step "fuzz homlint directive grammar (${FUZZTIME})"
go test ./internal/analysis -run='^$' -fuzz='^FuzzParseDirective$' -fuzztime="$FUZZTIME"

step "fuzz store WAL replay + segment reader (${FUZZTIME} each)"
go test ./internal/store -run='^$' -fuzz='^FuzzWALReplay$' -fuzztime="$FUZZTIME"
go test ./internal/store -run='^$' -fuzz='^FuzzSegmentRead$' -fuzztime="$FUZZTIME"

# Crash-recovery chaos: every seeded fault point (torn WAL tail, corrupt
# spill frame, crash before fsync) across 3 seeds, with concurrent
# writers under the race detector; recovered state must be bit-identical
# to an offline twin fed the same acknowledged labels, and runs must be
# deterministic per seed. Also part of the full -race pass above, but a
# chaos regression should name itself in the verify log.
step "store chaos suite (3 fault points x 3 seeds, -race)"
go test -race ./internal/store -run 'TestStoreChaos' -count=1

# Coverage floor: the packages that own failure handling — the serving
# stack, the gateway, the fault-injection layer, and the tiered session
# store — must keep at least 75% statement coverage, so degraded paths
# (shed, deadline, drop, corruption, interrupted migration, torn-WAL
# recovery) stay exercised as they evolve.
step "coverage floor (internal/serve, internal/gate, internal/fault, internal/store >= 75%)"
cov=$(go test -cover ./internal/serve ./internal/gate ./internal/fault ./internal/store | tee /dev/stderr)
echo "$cov" | awk '
	/^ok/ {
		for (i = 1; i <= NF; i++) {
			if ($i == "coverage:") {
				pct = $(i + 1)
				sub(/%$/, "", pct)
				if (pct + 0 < 75.0) {
					printf "coverage gate: %s at %s%% (< 75%%)\n", $2, pct
					bad = 1
				}
			}
		}
	}
	END { exit bad }
' >&2

# The committed baseline (lint/baseline.json) is the CI contract: any
# finding not recorded there fails the gate, and the SARIF report lands
# in results/ for archiving alongside the benchmark artifacts.
step "homlint -baseline lint/baseline.json -sarif results/homlint.sarif ./..."
go run ./cmd/homlint -baseline lint/baseline.json -sarif results/homlint.sarif ./...

# Serving smoke: train a small model through the real pipeline — with
# phase tracing on, exercising the obs tracer end to end — and push one
# session of load through an in-process homserve (loopback HTTP, the
# bounded queue, micro-batching workers, graceful drain). homload exits
# nonzero on any failed or unaccounted request.
step "homserve/homload smoke (1 session, 200 records, traced build)"
smoketmp=$(mktemp -d)
trap 'rm -rf "$smoketmp"' EXIT
go run ./cmd/genstream -stream stagger -n 3000 -seed 7 \
	-o "$smoketmp/hist.csv" -schema "$smoketmp/schema.json"
go run ./cmd/homtrain -in "$smoketmp/hist.csv" -schema "$smoketmp/schema.json" \
	-o "$smoketmp/model.gob" -seed 7 \
	-trace "$smoketmp/trace.json" -bench-out "$smoketmp/BENCH_pipeline.json" >/dev/null
for f in trace.json BENCH_pipeline.json; do
	if [ ! -s "$smoketmp/$f" ]; then
		echo "homtrain produced empty $f" >&2
		exit 1
	fi
done
go run ./cmd/homload -model "$smoketmp/model.gob" -sessions 1 -records 200 \
	-batch 16 -out "$smoketmp/BENCH_serve.json"

# Compiled serving smoke: the same model over the binary wire codec,
# then a classify-only bench through the live HTTP stack pinned to one
# core. The committed headline claim — >= 1M records/s per core on the
# compiled + binary path — is re-proven here on every run, end to end
# (HTTP server, session table, codec), not just at the kernel level.
step "compiled serve smoke: binary codec classify bench (>= 1M records/s, 1 core)"
go run ./cmd/homload -model "$smoketmp/model.gob" -sessions 1 -records 200 \
	-batch 16 -codec binary -classify-bench 200000 -gomaxprocs 1 \
	-out "$smoketmp/BENCH_compiled.json"
awk '
	/"classify_bench"/ { incb = 1 }
	incb && /"binary"/ { inbin = 1 }
	inbin && /"records_per_second"/ {
		v = $2
		sub(/,$/, "", v)
		if (v + 0 < 1000000) {
			printf "binary classify bench: %.0f records/s (< 1e6 floor)\n", v + 0
			exit 1
		}
		printf "binary classify bench: %.0f records/s\n", v + 0
		exit 0
	}
	END { if (!inbin) { print "classify_bench section missing"; exit 1 } }
' "$smoketmp/BENCH_compiled.json"

# Tiered store smoke: many more sessions than the hot set holds, through
# the real HTTP path with the WAL on. homload itself exits nonzero on any
# failed request, on lost sessions, and when the run measured zero
# hydrations (which would make the latency profile vacuous).
step "tiered store smoke (1500 sessions, hot set 64, WAL)"
go run ./cmd/homload -model "$smoketmp/model.gob" -store-bench 1500 \
	-hot-sessions 64 -wal -out "$smoketmp/BENCH_store.json"
if [ ! -s "$smoketmp/BENCH_store.json" ]; then
	echo "store smoke produced empty BENCH_store.json" >&2
	exit 1
fi

# Gateway fleet smoke: three replicas behind an in-process gate.Gateway,
# with a forced mid-run rebalance (a fourth replica joins at 1/3, one
# retires gracefully at 2/3). homload exits nonzero on any failed or
# unaccounted request and on any served-vs-offline bit-identity mismatch;
# the migration counter below proves sessions actually moved live.
step "homgate fleet smoke (3 replicas, churn, bit-identity, flight-recorded)"
go run ./cmd/homload -model "$smoketmp/model.gob" -fleet 3 -fleet-churn \
	-sessions 6 -records 200 -batch 10 -out "$smoketmp/BENCH_gate.json" \
	-flight-dir "$smoketmp/flight"
migrations=$(sed -n 's/.*"migrations_total": \([0-9]*\).*/\1/p' "$smoketmp/BENCH_gate.json")
if [ -z "$migrations" ] || [ "$migrations" -eq 0 ]; then
	echo "fleet smoke: hom_gate_migrations_total is ${migrations:-missing}, want > 0" >&2
	exit 1
fi

# Tiered fleet smoke: every replica runs the tiered store with a hot set
# of 4, so sessions spill and rehydrate constantly while the offline-twin
# check still demands bit-identical served state. The hydration counter
# proves the cold tier was actually crossed, not idly configured.
step "tiered fleet smoke (2 replicas, hot set 4, WAL, bit-identity)"
go run ./cmd/homload -model "$smoketmp/model.gob" -fleet 2 \
	-sessions 12 -records 100 -batch 10 \
	-spill-dir "$smoketmp/fleet-spill" -hot-sessions 4 -wal \
	-out "$smoketmp/BENCH_gate_tiered.json"
hydrations=$(sed -n 's/.*"hydrate_total": \([0-9]*\).*/\1/p' "$smoketmp/BENCH_gate_tiered.json")
if [ -z "$hydrations" ] || [ "$hydrations" -eq 0 ]; then
	echo "tiered fleet smoke: hom_hydrate_total is ${hydrations:-missing}, want > 0" >&2
	exit 1
fi

# Fleet trace gate: merge the per-process flight dumps the smoke just
# wrote and require one trace to hold the client hop, the gateway's
# route+forward, and the replica's classify — proof the X-Hom-Trace
# header survived every hop. The churn above makes the run include a
# live migration, whose ForceTrace span must also be present.
step "homtrace fleet merge (one trace across client, gate, replica)"
go run ./cmd/homtrace -dir "$smoketmp/flight" -o "$smoketmp/fleet_trace.json" \
	-assert-span client.request -assert-span gate.route \
	-assert-span gate.forward -assert-span serve.classify
go run ./cmd/homtrace -dir "$smoketmp/flight" -grep name=gate.migrate \
	-assert-span gate.migrate >/dev/null
if [ ! -s "$smoketmp/fleet_trace.json" ]; then
	echo "homtrace produced empty fleet_trace.json" >&2
	exit 1
fi

# homtop gate: the dashboard renderer is pinned byte-for-byte against
# testdata/frame.golden (already covered by the race run above, but a
# frame drift should name itself in the verify log).
step "homtop golden frame"
go test ./cmd/homtop -run TestRenderGoldenFrame -count=1

# Autoscale smoke: the fleet starts at the lower bound and capacity
# decisions come only from the replicas' exported metrics. The decisions
# array must show at least one scale-up; sessions survive every move.
step "homgate autoscale smoke (1:2 bounds, metrics-driven)"
go run ./cmd/homload -model "$smoketmp/model.gob" -fleet-autoscale 1:2 \
	-sessions 8 -records 300 -batch 4 -workers 1 \
	-fleet-service-delay 4ms -fleet-scale-interval 150ms \
	-out "$smoketmp/BENCH_gate_scale.json"
if ! grep -q '"up r' "$smoketmp/BENCH_gate_scale.json"; then
	echo "autoscale smoke: no scale-up decision recorded" >&2
	exit 1
fi

# Scaling-bench smoke: a small sweep through both merge engines. runScale
# itself fails if the optimized engine's per-record assignments differ
# from the reference engine's, so this doubles as the cross-engine
# bit-identity gate.
step "homtrain -scale smoke (2000 records, workers 1,2)"
go run ./cmd/homtrain -scale -scale-hist 2000 -scale-workers 1,2 -reuse 1.0 \
	-scale-out "$smoketmp/BENCH_scale.json" >/dev/null
if [ ! -s "$smoketmp/BENCH_scale.json" ]; then
	echo "homtrain -scale produced empty BENCH_scale.json" >&2
	exit 1
fi

echo "verify.sh: all gates passed"
