#!/bin/sh
# verify.sh — the repository's tier-1 verification gate.
#
# Runs, in order: formatting, vet, build, the full test suite under the
# race detector, short fuzz passes over the CSV parsers, and the
# repository's own static-analysis suite (cmd/homlint). Every step must
# pass; the script exits nonzero at the first failure.
#
# Usage:  ./verify.sh            # from the module root
#         FUZZTIME=30s ./verify.sh   # longer fuzz budget
set -eu

cd "$(dirname "$0")"

FUZZTIME="${FUZZTIME:-5s}"

step() {
	echo "== $*"
}

step gofmt
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

step go vet ./...
go vet ./...

step go build ./...
go build ./...

step "go test -race ./..."
go test -race ./...

step "fuzz dataio (${FUZZTIME} each)"
go test ./internal/dataio -run='^$' -fuzz='^FuzzParseRecord$' -fuzztime="$FUZZTIME"
go test ./internal/dataio -run='^$' -fuzz='^FuzzReadStream$' -fuzztime="$FUZZTIME"

step "homlint ./..."
go run ./cmd/homlint ./...

echo "verify.sh: all gates passed"
