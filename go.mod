module highorder

go 1.22
