package highorder

// Benchmark harness: one testing.B benchmark per paper table and figure
// (see the experiment index in DESIGN.md), plus ablation benches for the
// design choices the paper calls out. The table/figure benches run the
// corresponding experiment driver at a small scale; run
//
//	go run ./cmd/experiments -scale 0.05
//
// for paper-shaped output at a meaningful scale.

import (
	"fmt"
	"io"
	"testing"

	"highorder/internal/core"
	"highorder/internal/data"
	"highorder/internal/eval"
	"highorder/internal/experiments"
	"highorder/internal/synth"
	"highorder/internal/tree"
	"highorder/internal/wce"
)

// benchConfig is a deliberately tiny configuration so the full bench suite
// completes in minutes.
func benchConfig(seed int64) experiments.Config {
	return experiments.Config{Scale: 0.005, Runs: 1, Seed: seed, Out: io.Discard}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner(benchConfig(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Generators regenerates Table I (stream summaries).
func BenchmarkTable1Generators(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2ErrorRates regenerates Table II (error-rate comparison).
func BenchmarkTable2ErrorRates(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3TestTime regenerates Table III (test-time comparison).
func BenchmarkTable3TestTime(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Build regenerates Table IV (build phase).
func BenchmarkTable4Build(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig3ChangingRate regenerates Figure 3 (impact of changing rate).
func BenchmarkFig3ChangingRate(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4HistoryScale regenerates Figure 4 (impact of history size).
func BenchmarkFig4HistoryScale(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5ChangeCurves regenerates Figure 5 (error during change).
func BenchmarkFig5ChangeCurves(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6ProbTraces regenerates Figure 6 (concept probabilities).
func BenchmarkFig6ProbTraces(b *testing.B) { runExperiment(b, "fig6") }

// --- Micro benchmarks on the core pipeline ---

func staggerHistory(n int, seed int64) *Dataset {
	return TakeDataset(NewStagger(StaggerConfig{Seed: seed}), n)
}

// BenchmarkBuildStagger10k measures the offline build on a 10k Stagger
// history.
func BenchmarkBuildStagger10k(b *testing.B) {
	hist := staggerHistory(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := DefaultBuildOptions()
		opts.Seed = 1
		if _, err := Build(hist, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorObserve measures one active-probability update.
func BenchmarkPredictorObserve(b *testing.B) {
	hist := staggerHistory(10000, 2)
	opts := DefaultBuildOptions()
	opts.Seed = 2
	m, err := Build(hist, opts)
	if err != nil {
		b.Fatal(err)
	}
	p := m.NewPredictor()
	test := staggerHistory(1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(test.Records[i%test.Len()])
	}
}

// BenchmarkPredictorPredict measures one pruned ensemble prediction.
func BenchmarkPredictorPredict(b *testing.B) {
	hist := staggerHistory(10000, 4)
	opts := DefaultBuildOptions()
	opts.Seed = 4
	m, err := Build(hist, opts)
	if err != nil {
		b.Fatal(err)
	}
	p := m.NewPredictor()
	test := staggerHistory(1000, 5)
	for _, r := range test.Records[:200] {
		p.Observe(r)
	}
	x := data.Record{Values: test.Records[0].Values}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(x)
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// ablationStream builds a fixed evaluation setup for the ablations.
func ablationStream(seed int64) (hist, test *Dataset) {
	g := NewStagger(StaggerConfig{Seed: seed})
	return TakeDataset(g, 8000), TakeDataset(g, 16000)
}

func reportErr(b *testing.B, errRate float64) {
	b.Helper()
	b.ReportMetric(errRate, "err/op")
}

// BenchmarkAblationStep2Distance compares step 2 ordered by model
// similarity (Eq. 3, the paper's choice) against ΔQ (Eq. 2), which needs a
// trained classifier per candidate pair.
func BenchmarkAblationStep2Distance(b *testing.B) {
	for _, mode := range []struct {
		name   string
		deltaQ bool
	}{{"similarity", false}, {"deltaQ", true}} {
		b.Run(mode.name, func(b *testing.B) {
			hist, test := ablationStream(11)
			var lastErr float64
			for i := 0; i < b.N; i++ {
				opts := DefaultBuildOptions()
				opts.Seed = 11
				opts.Step2DeltaQ = mode.deltaQ
				m, err := core.Build(hist, opts)
				if err != nil {
					b.Fatal(err)
				}
				lastErr = eval.Run(m.NewPredictor(), test).ErrorRate()
			}
			reportErr(b, lastErr)
		})
	}
}

// BenchmarkAblationMAPvsEnsemble compares the weighted ensemble (Eq. 10)
// against predicting with only the most probable concept.
func BenchmarkAblationMAPvsEnsemble(b *testing.B) {
	hist, test := ablationStream(12)
	opts := DefaultBuildOptions()
	opts.Seed = 12
	m, err := core.Build(hist, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts core.PredictorOptions
	}{
		{"ensemble", core.PredictorOptions{}},
		{"map-only", core.PredictorOptions{MAPOnly: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var lastErr float64
			for i := 0; i < b.N; i++ {
				p := m.NewPredictorWithOptions(mode.opts)
				lastErr = eval.Run(p, test).ErrorRate()
			}
			reportErr(b, lastErr)
		})
	}
}

// BenchmarkAblationPruning compares prediction with and without the
// active-probability pruning of §III-C. Error must be identical; time
// differs.
func BenchmarkAblationPruning(b *testing.B) {
	hist, test := ablationStream(13)
	opts := DefaultBuildOptions()
	opts.Seed = 13
	m, err := core.Build(hist, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts core.PredictorOptions
	}{
		{"pruned", core.PredictorOptions{}},
		{"full", core.PredictorOptions{DisablePruning: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var lastErr float64
			for i := 0; i < b.N; i++ {
				p := m.NewPredictorWithOptions(mode.opts)
				lastErr = eval.Run(p, test).ErrorRate()
			}
			reportErr(b, lastErr)
		})
	}
}

// BenchmarkAblationBaseLearner compares the C4.5-style tree against Naive
// Bayes as the base learner.
func BenchmarkAblationBaseLearner(b *testing.B) {
	for _, mode := range []struct {
		name    string
		learner Learner
	}{
		{"tree", NewTreeLearner()},
		{"bayes", NewBayesLearner()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			hist, test := ablationStream(14)
			var lastErr float64
			for i := 0; i < b.N; i++ {
				opts := DefaultBuildOptions()
				opts.Seed = 14
				opts.Learner = mode.learner
				m, err := core.Build(hist, opts)
				if err != nil {
					b.Fatal(err)
				}
				lastErr = eval.Run(m.NewPredictor(), test).ErrorRate()
			}
			reportErr(b, lastErr)
		})
	}
}

// BenchmarkAblationBlockSize sweeps the concept-clustering block size over
// the paper's recommended range (2–20, §II-A).
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, size := range []int{2, 5, 10, 20} {
		b.Run(fmt.Sprintf("block%d", size), func(b *testing.B) {
			hist, test := ablationStream(15)
			var lastErr float64
			for i := 0; i < b.N; i++ {
				opts := DefaultBuildOptions()
				opts.Seed = 15
				opts.BlockSize = size
				m, err := core.Build(hist, opts)
				if err != nil {
					b.Fatal(err)
				}
				lastErr = eval.Run(m.NewPredictor(), test).ErrorRate()
			}
			reportErr(b, lastErr)
		})
	}
}

// BenchmarkAblationEmpiricalTransitions compares Eq. 6's frequency-based χ
// against the smoothed empirical transition matrix.
func BenchmarkAblationEmpiricalTransitions(b *testing.B) {
	for _, mode := range []struct {
		name      string
		empirical bool
	}{{"eq6", false}, {"empirical", true}} {
		b.Run(mode.name, func(b *testing.B) {
			hist, test := ablationStream(16)
			var lastErr float64
			for i := 0; i < b.N; i++ {
				opts := DefaultBuildOptions()
				opts.Seed = 16
				opts.EmpiricalTransitions = mode.empirical
				m, err := core.Build(hist, opts)
				if err != nil {
					b.Fatal(err)
				}
				lastErr = eval.Run(m.NewPredictor(), test).ErrorRate()
			}
			reportErr(b, lastErr)
		})
	}
}

// BenchmarkWCEInstancePruning quantifies WCE's instance-based pruning,
// which the paper credits for WCE's falling test time at high change
// rates (§IV-C.2).
func BenchmarkWCEInstancePruning(b *testing.B) {
	benchWCE := func(b *testing.B, disable bool) {
		g := synth.NewStagger(synth.StaggerConfig{Lambda: 0.005, Seed: 17})
		hist := synth.TakeDataset(g, 5000)
		test := synth.TakeDataset(g, 10000)
		for i := 0; i < b.N; i++ {
			w := wce.New(wce.Options{
				Learner:        tree.NewLearner(),
				Schema:         g.Schema(),
				DisablePruning: disable,
			})
			eval.Warm(w, hist)
			eval.Run(w, test)
		}
	}
	b.Run("pruned", func(b *testing.B) { benchWCE(b, false) })
	b.Run("full", func(b *testing.B) { benchWCE(b, true) })
}

// BenchmarkTreeTrainIntrusion4k measures base-classifier training on the
// widest schema (41 attributes).
func BenchmarkTreeTrainIntrusion4k(b *testing.B) {
	g := synth.NewIntrusion(synth.IntrusionConfig{Lambda: 1e-12, Seed: 18})
	d := synth.TakeDataset(g, 4000)
	learner := tree.NewLearner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learner.Train(d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Baseline throughput benches (records through predict+learn) ---

func benchOnline(b *testing.B, mk func() Online) {
	g := synth.NewStagger(synth.StaggerConfig{Lambda: 0.002, Seed: 31})
	hist := synth.TakeDataset(g, 5000)
	test := synth.TakeDataset(g, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mk()
		eval.Warm(a, hist)
		eval.Run(a, test)
	}
	b.ReportMetric(float64(10000*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkOnlineRePro(b *testing.B) {
	benchOnline(b, func() Online { return NewRePro(ReProOptions{Schema: synth.StaggerSchema()}) })
}

func BenchmarkOnlineWCE(b *testing.B) {
	benchOnline(b, func() Online { return NewWCE(WCEOptions{Schema: synth.StaggerSchema()}) })
}

func BenchmarkOnlineDWM(b *testing.B) {
	benchOnline(b, func() Online { return NewDWM(DWMOptions{Schema: synth.StaggerSchema()}) })
}

func BenchmarkOnlineVFDT(b *testing.B) {
	benchOnline(b, func() Online { return NewVFDT(VFDTOptions{Schema: synth.StaggerSchema()}) })
}

func BenchmarkOnlineHighOrder(b *testing.B) {
	g := synth.NewStagger(synth.StaggerConfig{Lambda: 0.002, Seed: 31})
	hist := synth.TakeDataset(g, 5000)
	test := synth.TakeDataset(g, 5000)
	opts := DefaultBuildOptions()
	opts.Seed = 31
	m, err := Build(hist, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Run(m.NewPredictor(), test)
	}
	b.ReportMetric(float64(5000*b.N)/b.Elapsed().Seconds(), "records/s")
}
