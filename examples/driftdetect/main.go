// Drift detection and trend-chasing, side by side: this example runs the
// building blocks the high-order model competes against — an incremental
// Hoeffding tree (VFDT) with and without window forgetting, monitored by
// three drift detectors — on a stream with two abrupt concept shifts, and
// then shows what the high-order model does with the same stream.
//
// It is a miniature of the paper's argument: detectors tell you *that* the
// world changed; chasing learners then relearn from scratch; the
// high-order model simply recognizes which already-known world is back.
//
// Run with: go run ./examples/driftdetect
package main

import (
	"fmt"
	"log"

	"highorder"
)

func main() {
	schema := highorder.NewStagger(highorder.StaggerConfig{}).Schema()

	// phases builds records for a sequence of concepts, n records each.
	phases := func(n int, concepts ...int) []highorder.Record {
		var records []highorder.Record
		for phase, concept := range concepts {
			gen := highorder.NewStagger(highorder.StaggerConfig{Lambda: 1e-12, Seed: int64(10 + phase)})
			ds, _ := highorder.Take(gen, n)
			for _, r := range ds.Records {
				c, s, z := int(r.Values[0]), int(r.Values[1]), int(r.Values[2])
				records = append(records, highorder.Record{
					Values: r.Values,
					Class:  staggerLabel(concept, c, s, z),
				})
			}
		}
		return records
	}

	// 1. Drift detectors watching a windowed Hoeffding tree. The learner
	// first masters concept A; monitoring starts only then, and each alarm
	// is followed by a short refractory period while the learner relearns.
	learner := highorder.NewVFDT(highorder.VFDTOptions{Schema: schema, Window: 2000})
	for _, r := range phases(4000, 0) {
		learner.Learn(r)
	}
	records := phases(4000, 2, 0) // true changes at t=0 and t=4000
	detectors := []highorder.DriftDetector{
		highorder.NewWindowDetector(20, 0.2),
		highorder.NewDDMDetector(),
		highorder.NewPageHinkleyDetector(),
	}
	refractory := map[string]int{}
	wrong := 0
	for i, r := range records {
		correct := learner.Predict(highorder.Record{Values: r.Values}) == r.Class
		if !correct {
			wrong++
		}
		for _, d := range detectors {
			if i < refractory[d.Name()] {
				continue
			}
			if d.Observe(correct) {
				fmt.Printf("t=%5d %-12s signals concept change (true changes at 0 and 4000)\n", i, d.Name())
				d.Reset()
				refractory[d.Name()] = i + 1000 // let the learner relearn
			}
		}
		learner.Learn(r)
	}
	fmt.Printf("windowed VFDT error while chasing: %.4f\n\n", float64(wrong)/float64(len(records)))

	// 2. The high-order model on the same task: learn both concepts from
	// history once, then just track which one is active.
	histGen := highorder.NewStagger(highorder.StaggerConfig{Lambda: 0.002, Seed: 99})
	history, _ := highorder.Take(histGen, 12000)
	model, err := highorder.Build(history, highorder.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	p := model.NewPredictor()
	wrong = 0
	for _, r := range records {
		if p.Predict(highorder.Record{Values: r.Values}) != r.Class {
			wrong++
		}
		p.Observe(r)
	}
	fmt.Printf("high-order model error on the same stream: %.4f (%d concepts reused, none relearned)\n",
		float64(wrong)/float64(len(records)), model.NumConcepts())
}

// staggerLabel mirrors the Stagger concept definitions (A=0, B=1, C=2).
func staggerLabel(concept, color, shape, size int) int {
	switch concept {
	case 0:
		if color == 2 && size == 0 {
			return 1
		}
	case 1:
		if color == 0 || shape == 1 {
			return 1
		}
	case 2:
		if size == 1 || size == 2 {
			return 1
		}
	}
	return 0
}
