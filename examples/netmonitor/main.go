// Network monitoring: detect which traffic regime a network is in and
// classify connections accordingly.
//
// This is the paper's motivating scenario for sampling change: a network
// mostly carries normal traffic, but different periods witness bursts of
// different intrusion classes (dos floods, probe sweeps, ...). A single
// global classifier tuned to one period's class mixture mislabels the
// ambiguous classes (r2l/u2r mimic normal sessions) under another. The
// high-order model learns one classifier per regime from history and
// switches between them as the live stream moves through regimes.
//
// Run with: go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"

	"highorder"
)

func main() {
	// Five regimes and a changing rate of 1/500 keep the demo small while
	// the history still contains several occurrences of every regime.
	gen := highorder.NewIntrusion(highorder.IntrusionConfig{NumRegimes: 5, Lambda: 0.002, Seed: 7})
	history := highorder.TakeDataset(gen, 30000)

	model, err := highorder.Build(history, highorder.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d traffic regimes from %d historical connections (build %v)\n",
		model.NumConcepts(), history.Len(), model.Stats.Elapsed.Round(1000000))

	// Stream live connections; report whenever the believed regime flips.
	p := model.NewPredictor()
	test, emissions := highorder.Take(gen, 30000)
	schema := gen.Schema()

	believed := -1
	errors, alarms := 0, 0
	for i, r := range test.Records {
		pred := p.Predict(highorder.Record{Values: r.Values})
		if pred != r.Class {
			errors++
		}
		p.Observe(r)

		best, prob := p.CurrentConcept()
		if best != believed && prob > 0.97 {
			believed = best
			alarms++
			if alarms <= 12 {
				fmt.Printf("t=%6d regime change: now in regime %d (P=%.2f); true generator regime %d; last connection class %s\n",
					i, best, prob, emissions[i].Concept, schema.Classes[r.Class])
			}
		}
	}
	fmt.Printf("connection classification error: %.5f over %d connections\n",
		float64(errors)/float64(test.Len()), test.Len())
	fmt.Printf("regime-change alarms raised: %d\n", alarms)
}
