// Quickstart: build a high-order model from a historical stream and use it
// to classify an evolving test stream.
//
// The stream is the classic Stagger benchmark: three nominal attributes,
// three concepts the stream shifts among at random. The high-order model
// discovers the concepts offline, then tracks which one is active online.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"highorder"
)

func main() {
	// 1. Generate a historical labeled stream (in a real application this
	//    is your archived, labeled data, ordered by time).
	gen := highorder.NewStagger(highorder.StaggerConfig{Seed: 42})
	history := highorder.TakeDataset(gen, 20000)

	// 2. Build the high-order model offline. This runs concept clustering,
	//    trains one classifier per discovered concept, and learns the
	//    concept transition statistics.
	model, err := highorder.Build(history, highorder.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d stable concepts in %d historical records (build took %v)\n",
		model.NumConcepts(), history.Len(), model.Stats.Elapsed.Round(1000000))
	for i, c := range model.Concepts {
		fmt.Printf("  concept %d: %5d records, validation error %.4f, avg run %4.0f records\n",
			i, c.Size, c.Err, c.Len)
	}

	// 3. Classify the continuing stream. At each timestamp we predict the
	//    unlabeled record first, then reveal its label to the predictor —
	//    the labeled trickle is what lets it track concept changes.
	p := model.NewPredictor()
	test := highorder.TakeDataset(gen, 40000)
	errors := 0
	for _, r := range test.Records {
		if p.Predict(highorder.Record{Values: r.Values}) != r.Class {
			errors++
		}
		p.Observe(r)
	}
	fmt.Printf("online error rate over %d records: %.5f\n",
		test.Len(), float64(errors)/float64(test.Len()))

	// 4. The predictor always knows which concept it believes is active.
	probs := p.ActiveProbabilities()
	for i, pr := range probs {
		fmt.Printf("  P(concept %d is active) = %.3f\n", i, pr)
	}
}
