// Road-traffic prediction: the paper's second motivating example (§I).
// "Under normal conditions, traffic behaves in one way, and under other
// conditions, e.g., after an accident, traffic behaves in another way" —
// and transitions happen at any time, not periodically.
//
// This example defines its own schema and data-generating process with the
// public API (rather than a bundled benchmark): sensors report occupancy,
// speed and flow for a road segment, and the task is to predict whether
// the segment will be congested in the next interval. The relationship
// between the sensor readings and imminent congestion depends on the
// hidden road state (free flow / accident / event crowd), which switches
// at random.
//
// Run with: go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math/rand"

	"highorder"
)

// roadState is the hidden concept: how readings map to imminent congestion.
type roadState int

const (
	freeFlow roadState = iota // congestion only at very high occupancy
	accident                  // even light traffic jams: lanes are blocked
	event                     // stadium crowd: speed drops predict jams early
	numStates
)

// schema returns the sensor schema.
func schema() *highorder.Schema {
	return &highorder.Schema{
		Attributes: []highorder.Attribute{
			{Name: "occupancy", Kind: highorder.Numeric}, // fraction of road occupied
			{Name: "speed", Kind: highorder.Numeric},     // mean speed, km/h
			{Name: "flow", Kind: highorder.Numeric},      // vehicles/min
			{Name: "rain", Kind: highorder.Nominal, Values: []string{"dry", "wet"}},
		},
		Classes: []string{"clear", "congested"},
	}
}

// generate produces n labeled readings, switching the hidden road state
// with probability 0.002 per reading. It returns the dataset and the true
// state per reading (used only for reporting).
func generate(rng *rand.Rand, n int) (*highorder.Dataset, []roadState) {
	d := highorder.NewDataset(schema())
	states := make([]roadState, n)
	state := freeFlow
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.002 {
			state = roadState(rng.Intn(int(numStates)))
		}
		occ := rng.Float64()
		speed := 20 + 90*rng.Float64()
		flow := 60 * rng.Float64()
		rain := 0
		if rng.Float64() < 0.25 {
			rain = 1
		}
		congested := false
		switch state {
		case freeFlow:
			congested = occ > 0.8 || (rain == 1 && occ > 0.65)
		case accident:
			congested = occ > 0.3
		case event:
			congested = speed < 55 || occ > 0.7
		}
		class := 0
		if congested {
			class = 1
		}
		d.Add(highorder.Record{Values: []float64{occ, speed, flow, float64(rain)}, Class: class})
		states[i] = state
	}
	return d, states
}

func main() {
	rng := rand.New(rand.NewSource(11))
	history, _ := generate(rng, 30000)

	model, err := highorder.Build(history, highorder.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d road states from %d historical readings\n",
		model.NumConcepts(), history.Len())

	test, states := generate(rng, 20000)
	p := model.NewPredictor()
	errors := 0
	// Error per true hidden state, to show each regime is handled.
	perState := map[roadState][2]int{}
	for i, r := range test.Records {
		pred := p.Predict(highorder.Record{Values: r.Values})
		if pred != r.Class {
			errors++
		}
		v := perState[states[i]]
		v[1]++
		if pred != r.Class {
			v[0]++
		}
		perState[states[i]] = v
		p.Observe(r)
	}
	fmt.Printf("congestion prediction error: %.5f\n", float64(errors)/float64(test.Len()))
	names := map[roadState]string{freeFlow: "free-flow", accident: "accident", event: "event"}
	for s := freeFlow; s < numStates; s++ {
		v := perState[s]
		if v[1] == 0 {
			continue
		}
		fmt.Printf("  during %-9s: error %.5f over %d readings\n",
			names[s], float64(v[0])/float64(v[1]), v[1])
	}
}
