// Fraud detection with lagged, partial labels: the paper's labeling model
// (§III-A). "In financial fraud detection, a small subset of transactions
// are investigated and labeled" — so the labeled cue stream Y is sparse
// and lags the unlabeled stream X being classified.
//
// This example shows the predictor working with only 1-in-10 transactions
// ever labeled, using AdvanceTime to account for the unlabeled gaps, while
// fraud patterns (concepts) switch as fraud rings change tactics.
//
// Run with: go run ./examples/frauddetect
package main

import (
	"fmt"
	"log"
	"math/rand"

	"highorder"
)

func schema() *highorder.Schema {
	return &highorder.Schema{
		Attributes: []highorder.Attribute{
			{Name: "amount", Kind: highorder.Numeric},
			{Name: "hour", Kind: highorder.Numeric},
			{Name: "foreign", Kind: highorder.Nominal, Values: []string{"no", "yes"}},
			{Name: "channel", Kind: highorder.Nominal, Values: []string{"pos", "web", "atm"}},
		},
		Classes: []string{"legit", "fraud"},
	}
}

// tactic is the hidden fraud pattern in force.
type tactic int

const (
	cardTheft tactic = iota // high-value foreign POS transactions
	webScam                 // small nighttime web transactions
	atmSkim                 // repeated ATM withdrawals, any hour
	numTactics
)

func generate(rng *rand.Rand, n int) *highorder.Dataset {
	d := highorder.NewDataset(schema())
	t := cardTheft
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.001 {
			t = tactic(rng.Intn(int(numTactics)))
		}
		amount := rng.ExpFloat64() * 120
		hour := rng.Intn(24)
		foreign := 0
		if rng.Float64() < 0.2 {
			foreign = 1
		}
		channel := rng.Intn(3)
		fraud := false
		switch t {
		case cardTheft:
			fraud = foreign == 1 && channel == 0 && amount > 150
		case webScam:
			fraud = channel == 1 && amount < 40 && (hour < 6 || hour > 22)
		case atmSkim:
			fraud = channel == 2 && amount > 180
		}
		class := 0
		if fraud {
			class = 1
		}
		d.Add(highorder.Record{Values: []float64{amount, float64(hour), float64(foreign), float64(channel)}, Class: class})
	}
	return d
}

func main() {
	rng := rand.New(rand.NewSource(23))
	history := generate(rng, 40000)

	model, err := highorder.Build(history, highorder.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d fraud tactics from %d historical transactions\n",
		model.NumConcepts(), history.Len())

	// Online: every transaction is classified, but only every 10th is ever
	// investigated and labeled. AdvanceTime tells the predictor how many
	// unlabeled records passed, so concept-change probabilities keep
	// diffusing at the right rate.
	const labelEvery = 10
	test := generate(rng, 30000)
	p := model.NewPredictor()
	errors, frauds, caught := 0, 0, 0
	sinceLabel := 0
	for i, r := range test.Records {
		pred := p.Predict(highorder.Record{Values: r.Values})
		if pred != r.Class {
			errors++
		}
		if r.Class == 1 {
			frauds++
			if pred == 1 {
				caught++
			}
		}
		sinceLabel++
		if i%labelEvery == 0 {
			// The investigation result arrives: advance over the unlabeled
			// gap, then fold in the labeled transaction.
			if sinceLabel > 1 {
				p.AdvanceTime(sinceLabel - 1)
			}
			p.Observe(r)
			sinceLabel = 0
		}
	}
	fmt.Printf("overall error with 1-in-%d labeling: %.5f\n",
		labelEvery, float64(errors)/float64(test.Len()))
	fmt.Printf("fraud recall: %d/%d (%.1f%%)\n", caught, frauds, 100*float64(caught)/float64(frauds))
}
